package vcd

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/queries"
	"repro/internal/vdbms"
)

// BatchRunner executes assigned subsets of query batches — the worker
// side of sharded execution. Batches are deterministic functions of
// (dataset, query, seed), so a worker rebuilds the full batch locally
// from the job options and executes only the global instance indices
// assigned to it; instance parameters never cross the wire. The runner
// configures the dataset's decoded cache once at construction (each
// worker process owns its cache), and reuses the driver's exact
// execution path — pinning, spans, result naming by global index — so
// a coordinator can merge subset results into a report identical to a
// single-process run.
type BatchRunner struct {
	ds    *Dataset
	sys   vdbms.System
	opt   Options
	val   *validator
	shard int
}

// NewBatchRunner prepares subset execution against ds with sys.
func NewBatchRunner(ds *Dataset, sys vdbms.System, opt Options) (*BatchRunner, error) {
	opt = opt.withDefaults()
	if opt.Mode == WriteMode && opt.ResultStore == nil {
		return nil, errors.New("vcd: WriteMode requires a result store")
	}
	ds.configureDecodedCache(opt.decodedCacheBudget(), opt.FullDecode)
	return &BatchRunner{ds: ds, sys: sys, opt: opt, val: newValidator(ds, opt), shard: -1}, nil
}

// SetShard tags the runner's spans with the shard (worker index) it
// executes as, for per-worker straggler attribution in merged trace
// reports. -1 (the default) means unsharded.
func (r *BatchRunner) SetShard(shard int) { r.shard = shard }

// IndexedResult is one executed instance tagged with its global batch
// index.
type IndexedResult struct {
	Index int
	InstanceResult
}

// RunSubset builds the full batch for q and executes the instances at
// the given global indices, in ascending index order, on the runner's
// worker pool. Validation (when enabled and sampled for the index) runs
// after execution, outside each instance's measured window, exactly as
// the single-process driver does. Results are returned tagged with
// their global indices; persisted result names use the same indices, so
// subsets from different workers never collide.
func (r *BatchRunner) RunSubset(q queries.QueryID, indices []int) ([]IndexedResult, error) {
	return r.RunSubsetTraced(q, indices, nil)
}

// RunSubsetTraced is RunSubset with coordinator-minted trace IDs:
// traces[i] is the distributed trace ID of indices[i] (nil or a zero
// entry leaves the instance locally minted, which yields the same ID —
// trace IDs are deterministic — but carrying them over the wire keeps
// the worker oblivious to the minting policy).
func (r *BatchRunner) RunSubsetTraced(q queries.QueryID, indices []int, traces []metrics.TraceID) ([]IndexedResult, error) {
	if !r.sys.Supports(q) {
		return nil, nil
	}
	batch := r.opt.InstancesPerScale * r.ds.Manifest.Scale
	insts, err := BuildBatch(r.ds, q, batch, r.opt)
	if err != nil {
		return nil, err
	}
	tids := make(map[int]metrics.TraceID, len(indices))
	for i, idx := range indices {
		if i < len(traces) && traces[i] != 0 {
			tids[idx] = traces[i]
		} else {
			tids[idx] = instanceTrace(r.opt, q, idx)
		}
	}
	idxs := append([]int(nil), indices...)
	sort.Ints(idxs)
	for _, idx := range idxs {
		if idx < 0 || idx >= len(insts) {
			return nil, fmt.Errorf("vcd: subset index %d outside batch of %d", idx, len(insts))
		}
	}
	out := make([]IndexedResult, len(idxs))
	run := func(worker, i int) {
		idx := idxs[i]
		inst := insts[idx]
		unpin := r.ds.pinInputs(inst)
		out[i] = IndexedResult{Index: idx, InstanceResult: executeInstance(r.ds, r.sys, inst, r.opt, idx, worker, tids[idx], r.shard)}
		unpin()
	}
	workers := r.opt.queryWorkers()
	if workers <= 1 || len(idxs) <= 1 {
		for i := range idxs {
			run(0, i)
		}
	} else {
		parallel.ForEachWorker(workers, len(idxs), func(w, i int) error {
			run(w, i)
			return nil
		})
	}
	if r.opt.Validate {
		for i := range out {
			res := &out[i].InstanceResult
			if res.Err != nil || res.Validation == nil {
				continue
			}
			sp := metrics.StartSpan(metrics.StageValidate)
			sp.Trace(tids[out[i].Index])
			sp.Shard(r.shard)
			r.val.validate(insts[out[i].Index], res.Validation)
			sp.Frames(res.Frames)
			sp.End()
		}
	}
	return out, nil
}

// Quiesce lets the engine drop batch-scoped state between query
// batches, mirroring the driver's post-batch shutdown (§3.2).
func (r *BatchRunner) Quiesce() {
	if q, ok := r.sys.(interface{ Shutdown() }); ok {
		q.Shutdown()
	}
}

// CacheStats reports the runner's dataset decoded-cache activity — the
// per-worker counters a coordinator sums into the merged report.
func (r *BatchRunner) CacheStats() metrics.CacheStats {
	return r.ds.DecodedCacheStats()
}

// NormalizeOptions fills the driver's defaults — the values Run itself
// would use — so a shard coordinator partitions and merges against the
// exact configuration its workers execute.
func NormalizeOptions(o Options) Options { return o.withDefaults() }

// ResultNamePrefix returns the persisted-name prefix of one instance's
// result files (resultName with the per-output key stripped), letting a
// shard worker attribute store contents to the instance that wrote
// them.
func ResultNamePrefix(q queries.QueryID, idx int) string {
	return fmt.Sprintf("result-%s-%03d-", sanitize(string(q)), idx)
}

// SummarizeValidation aggregates instance validations into the batch
// summary — the computation runQueryBatch performs, exported so a
// coordinator can recompute the summary from gathered per-instance
// verdicts and arrive at the identical value.
func SummarizeValidation(insts []InstanceResult) ValidationSummary {
	var s ValidationSummary
	var psnrs []float64
	for _, r := range insts {
		if r.Validation == nil || !r.Validation.Checked {
			continue
		}
		s.Checked++
		if r.Validation.Passed {
			s.Passed++
		}
		if r.Validation.PSNR >= 0 {
			psnrs = append(psnrs, r.Validation.PSNR)
		}
		s.SemanticChecked += r.Validation.SemanticChecked
		s.SemanticPassed += r.Validation.SemanticPassed
	}
	s.PSNR = metrics.Describe(psnrs)
	return s
}
