package vcd

import (
	"strings"
	"testing"

	"repro/internal/queries"
	"repro/internal/vcity"
	"repro/internal/vdbms"
	"repro/internal/vdbms/lightdblike"
	"repro/internal/vfs"
	"repro/internal/video"
)

func TestBuildBatchSizeAndDeterminism(t *testing.T) {
	ds := testDataset(t)
	opt := Options{Seed: 5}.withDefaults()
	a, err := BuildBatch(ds, queries.Q1, 6, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 6 {
		t.Fatalf("batch size %d", len(a))
	}
	b, err := BuildBatch(ds, queries.Q1, 6, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !paramsEq(a[i].Params, b[i].Params) || a[i].Inputs[0].Name != b[i].Inputs[0].Name {
			t.Fatalf("instance %d differs between identical batch builds", i)
		}
	}
	// A different seed draws different parameters.
	c, err := BuildBatch(ds, queries.Q1, 6, Options{Seed: 6}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if paramsEq(a[i].Params, c[i].Params) {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical batches")
	}
}

// paramsEq compares the Q1-relevant scalar fields.
func paramsEq(a, b queries.Params) bool {
	return a.X1 == b.X1 && a.Y1 == b.Y1 && a.X2 == b.X2 && a.Y2 == b.Y2 &&
		a.T1 == b.T1 && a.T2 == b.T2
}

func TestBuildBatchParamsInDomain(t *testing.T) {
	ds := testDataset(t)
	opt := Options{Seed: 9, MaxUpsamplePixels: 1 << 22}.withDefaults()
	for _, q := range queries.MicroQueries {
		insts, err := BuildBatch(ds, q, 8, opt)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		for i, inst := range insts {
			p := inst.Params
			if err := p.Validate(q, ds.Manifest.Width, ds.Manifest.Height, ds.Manifest.Duration); err != nil {
				t.Errorf("%s instance %d: sampled parameters outside Table 3 domain: %v", q, i, err)
			}
		}
	}
}

func TestBuildBatchQ8UsesTilePlates(t *testing.T) {
	ds := testDataset(t)
	insts, err := BuildBatch(ds, queries.Q8, 4, Options{Seed: 2}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range insts {
		if len(inst.Inputs) == 0 {
			t.Fatal("Q8 instance has no inputs")
		}
		tile := inst.Inputs[0].Camera().Tile
		found := false
		for _, p := range ds.TilePlates(tile) {
			if p == inst.Params.Plate {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("plate %s does not belong to tile %d", inst.Params.Plate, tile)
		}
		for _, in := range inst.Inputs {
			if in.Camera().Tile != tile {
				t.Error("Q8 inputs span tiles; tracking segments cannot cross disconnected tiles")
			}
			if in.Camera().Kind != vcity.TrafficCamera {
				t.Error("Q8 inputs must be traffic cameras")
			}
		}
	}
}

func TestBuildBatchQ9PanoGroups(t *testing.T) {
	ds := testDataset(t)
	insts, err := BuildBatch(ds, queries.Q9, 2, Options{Seed: 2}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range insts {
		if len(inst.Inputs) != 4 {
			t.Fatalf("Q9 instance has %d inputs", len(inst.Inputs))
		}
		prefix := inst.Inputs[0].Name[:strings.LastIndex(inst.Inputs[0].Name, "-sub")]
		for _, in := range inst.Inputs {
			if !strings.HasPrefix(in.Name, prefix) {
				t.Error("Q9 inputs from different panoramic groups")
			}
		}
	}
}

func TestWriteModePersistsResults(t *testing.T) {
	ds := testDataset(t)
	results := vfs.NewMemory()
	report, err := Run(ds, lightdblike.New(lightdblike.Options{}), Options{
		Queries:           []queries.QueryID{queries.Q1},
		InstancesPerScale: 2,
		Seed:              4,
		Mode:              WriteMode,
		ResultStore:       results,
	})
	if err != nil {
		t.Fatal(err)
	}
	qr, _ := report.QueryReport(queries.Q1)
	if qr.Completed != 2 {
		t.Fatalf("completed %d", qr.Completed)
	}
	names, _ := results.List()
	if len(names) != 2 {
		t.Fatalf("wrote %d results, want 2: %v", len(names), names)
	}
	for _, name := range names {
		data, _ := vfs.ReadAll(results, name)
		if len(data) == 0 {
			t.Errorf("result %s is empty", name)
		}
	}
}

func TestWriteModeRequiresStore(t *testing.T) {
	ds := testDataset(t)
	_, err := Run(ds, lightdblike.New(lightdblike.Options{}), Options{Mode: WriteMode})
	if err == nil {
		t.Error("WriteMode without a store should fail")
	}
}

// brokenEngine emits wrong pixels: the validator must fail it.
type brokenEngine struct{ inner vdbms.System }

func (b *brokenEngine) Name() string                          { return "broken" }
func (b *brokenEngine) Supports(q queries.QueryID) bool       { return b.inner.Supports(q) }
func (b *brokenEngine) QueryLOC(q queries.QueryID) (int, int) { return 1, 0 }
func (b *brokenEngine) Execute(inst *vdbms.QueryInstance, sink vdbms.Sink) error {
	return b.inner.Execute(inst, vdbms.SinkFunc(func(key string, v *video.Video) error {
		for _, f := range v.Frames {
			for i := range f.Y {
				f.Y[i] ^= 0x5c // corrupt every luma sample
			}
		}
		return sink.Emit(key, v)
	}))
}

func TestValidatorCatchesBrokenEngine(t *testing.T) {
	ds := testDataset(t)
	report, err := Run(ds, &brokenEngine{inner: lightdblike.New(lightdblike.Options{})}, Options{
		Queries:           []queries.QueryID{queries.Q1, queries.Q2a},
		InstancesPerScale: 1,
		Seed:              4,
		Mode:              StreamingMode,
		Validate:          true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, qr := range report.Queries {
		if qr.Validation.PassRate() > 0 {
			t.Errorf("%s: corrupted output passed validation (rate %.2f)", qr.Query, qr.Validation.PassRate())
		}
	}
}

func TestValidateFractionSampling(t *testing.T) {
	ds := testDataset(t)
	report, err := Run(ds, lightdblike.New(lightdblike.Options{}), Options{
		Queries:           []queries.QueryID{queries.Q2a},
		InstancesPerScale: 4,
		Seed:              4,
		Mode:              StreamingMode,
		Validate:          true,
		ValidateFraction:  0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	qr, _ := report.QueryReport(queries.Q2a)
	if qr.Validation.Checked != 2 {
		t.Errorf("validated %d of 4 instances, want 2 at fraction 0.5", qr.Validation.Checked)
	}
}

func TestSemanticValidationQ2c(t *testing.T) {
	ds := testDataset(t)
	report, err := Run(ds, lightdblike.New(lightdblike.Options{}), Options{
		Queries:           []queries.QueryID{queries.Q2c},
		InstancesPerScale: 3,
		Seed:              4,
		Mode:              StreamingMode,
		Validate:          true,
	})
	if err != nil {
		t.Fatal(err)
	}
	qr, _ := report.QueryReport(queries.Q2c)
	// At this tiny resolution eligible (large, unoccluded) objects may
	// be rare; when checks exist, most should pass — the engine draws
	// boxes from the same detection stream the geometry validates.
	if qr.Validation.SemanticChecked > 0 && qr.Validation.SemanticPassRate() < 0.5 {
		t.Errorf("semantic pass rate %.2f over %d checks",
			qr.Validation.SemanticPassRate(), qr.Validation.SemanticChecked)
	}
	// Q2(c) must not be frame-validated by PSNR.
	if qr.Validation.PSNR.N != 0 {
		t.Error("Q2(c) should use semantic validation only")
	}
}

func TestReportFPS(t *testing.T) {
	qr := QueryReport{Frames: 100}
	if qr.FPS() != 0 {
		t.Error("zero elapsed should report 0 fps")
	}
}

func TestStitchedInputCached(t *testing.T) {
	ds := testDataset(t)
	groups := ds.PanoGroups()
	if len(groups) == 0 {
		t.Skip("no panoramic groups")
	}
	a, err := ds.StitchedInput(groups[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := ds.StitchedInput(groups[0])
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("stitched input should be cached per group")
	}
	if a.Encoded.Config.Width != 2*a.Encoded.Config.Height {
		t.Errorf("stitched input %dx%d not 2:1", a.Encoded.Config.Width, a.Encoded.Config.Height)
	}
}
