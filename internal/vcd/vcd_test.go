package vcd

import (
	"testing"

	"repro/internal/detect"
	"repro/internal/queries"
	"repro/internal/vcg"
	"repro/internal/vcity"
	"repro/internal/vdbms"
	"repro/internal/vdbms/lightdblike"
	"repro/internal/vdbms/noscopelike"
	"repro/internal/vdbms/scannerlike"
	"repro/internal/vfs"
)

// testDataset generates a tiny dataset once per test binary.
func testDataset(t *testing.T) *Dataset {
	t.Helper()
	store, err := vfs.NewLocal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, err = vcg.Generate(vcity.Hyperparams{
		Scale: 1, Width: 128, Height: 96, Duration: 1.0, FPS: 15, Seed: 7,
	}, vcg.Options{Captions: true, QP: 18}, store)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := LoadDataset(store, detect.ProfileSynthetic)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestEndToEndMicrobenchmarksAllEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end run in -short mode")
	}
	ds := testDataset(t)
	for _, tc := range []struct {
		name string
		sys  vdbms.System
	}{
		{"scannerlike", scannerlike.New(scannerlike.Options{})},
		{"lightdblike", lightdblike.New(lightdblike.Options{})},
		{"noscopelike", noscopelike.NewDefault()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			report, err := Run(ds, tc.sys, Options{
				Queries:           []queries.QueryID{queries.Q1, queries.Q2a, queries.Q2c, queries.Q5},
				InstancesPerScale: 1,
				Seed:              99,
				Mode:              StreamingMode,
				Validate:          true,
				MaxUpsamplePixels: 1 << 22,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, qr := range report.Queries {
				if qr.Unsupported {
					if tc.name != "noscopelike" {
						t.Errorf("%s reports %s unsupported", tc.name, qr.Query)
					}
					continue
				}
				if qr.Completed != qr.BatchSize {
					t.Errorf("%s %s: completed %d of %d", tc.name, qr.Query, qr.Completed, qr.BatchSize)
					for _, inst := range qr.Instances {
						if inst.Err != nil {
							t.Logf("  instance error: %v", inst.Err)
						}
					}
					continue
				}
				if qr.Validation.Checked > 0 && qr.Validation.PassRate() < 1 {
					t.Errorf("%s %s: validation pass rate %.2f (PSNR min %.1f)",
						tc.name, qr.Query, qr.Validation.PassRate(), qr.Validation.PSNR.Min)
					for _, inst := range qr.Instances {
						if inst.Validation != nil && inst.Validation.Err != nil {
							t.Logf("  validation error: %v", inst.Validation.Err)
						}
					}
				}
			}
		})
	}
}
