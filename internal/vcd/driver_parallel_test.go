package vcd

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/queries"
	"repro/internal/vdbms"
	"repro/internal/vdbms/lightdblike"
	"repro/internal/vdbms/scannerlike"
	"repro/internal/vfs"
)

// equivalenceQueries exercise the paths most sensitive to concurrency:
// shared-input decode (every query), the blur pipeline (Q2b), masking
// with pooled temporaries (Q2d), resize (Q1, Q5), and the staged boxes
// input (Q6a).
var equivalenceQueries = []queries.QueryID{
	queries.Q1, queries.Q2b, queries.Q2d, queries.Q5, queries.Q6a,
}

type runOutcome struct {
	report *RunReport
	store  *vfs.Memory
}

func runForEquivalence(t *testing.T, ds *Dataset, sys vdbms.System, opt Options) runOutcome {
	t.Helper()
	store := vfs.NewMemory()
	opt.Queries = equivalenceQueries
	opt.InstancesPerScale = 2
	opt.Seed = 42
	opt.Mode = WriteMode
	opt.ResultStore = store
	opt.Validate = true
	report, err := Run(ds, sys, opt)
	if err != nil {
		t.Fatal(err)
	}
	return runOutcome{report: report, store: store}
}

// compareOutcomes checks everything observable about two runs except
// timing: per-instance results, validation verdicts, and every persisted
// result byte.
func compareOutcomes(t *testing.T, label string, want, got runOutcome) {
	t.Helper()
	if len(want.report.Queries) != len(got.report.Queries) {
		t.Fatalf("%s: %d query reports, want %d", label, len(got.report.Queries), len(want.report.Queries))
	}
	for qi := range want.report.Queries {
		wq, gq := &want.report.Queries[qi], &got.report.Queries[qi]
		if gq.Query != wq.Query || gq.BatchSize != wq.BatchSize ||
			gq.Completed != wq.Completed || gq.Unsupported != wq.Unsupported ||
			gq.ResourceErrors != wq.ResourceErrors || gq.Frames != wq.Frames {
			t.Errorf("%s: %s report diverged: got {batch %d completed %d frames %d}, want {batch %d completed %d frames %d}",
				label, wq.Query, gq.BatchSize, gq.Completed, gq.Frames, wq.BatchSize, wq.Completed, wq.Frames)
			continue
		}
		for i := range wq.Instances {
			wi, gi := &wq.Instances[i], &gq.Instances[i]
			if gi.Frames != wi.Frames {
				t.Errorf("%s: %s[%d] frames = %d, want %d", label, wq.Query, i, gi.Frames, wi.Frames)
			}
			werr, gerr := "", ""
			if wi.Err != nil {
				werr = wi.Err.Error()
			}
			if gi.Err != nil {
				gerr = gi.Err.Error()
			}
			if gerr != werr {
				t.Errorf("%s: %s[%d] err = %q, want %q", label, wq.Query, i, gerr, werr)
			}
			wv, gv := wi.Validation, gi.Validation
			if (wv == nil) != (gv == nil) {
				t.Errorf("%s: %s[%d] validation presence differs", label, wq.Query, i)
				continue
			}
			if wv == nil {
				continue
			}
			if gv.Checked != wv.Checked || gv.Passed != wv.Passed || gv.PSNR != wv.PSNR ||
				gv.SemanticChecked != wv.SemanticChecked || gv.SemanticPassed != wv.SemanticPassed {
				t.Errorf("%s: %s[%d] validation = %+v, want %+v", label, wq.Query, i, *gv, *wv)
			}
		}
	}
	wantNames, err := want.store.List()
	if err != nil {
		t.Fatal(err)
	}
	gotNames, err := got.store.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(wantNames) != len(gotNames) {
		t.Fatalf("%s: persisted %d results, want %d", label, len(gotNames), len(wantNames))
	}
	for i, name := range wantNames {
		if gotNames[i] != name {
			t.Fatalf("%s: result name %q, want %q", label, gotNames[i], name)
		}
		wb, err := vfs.ReadAll(want.store, name)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := vfs.ReadAll(got.store, name)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wb, gb) {
			t.Errorf("%s: persisted result %s differs (%d vs %d bytes)", label, name, len(gb), len(wb))
		}
	}
}

// TestRunWorkersEquivalence is the driver's determinism contract: the
// sequential paper-faithful mode, serial workers with the shared cache,
// and 8-way concurrent execution must produce identical per-instance
// results, validation verdicts, and persisted result bytes. Both the
// materializing engine (scannerlike: ingest via DecodeInput) and the
// streaming engine (lightdblike: DecodeShared vs its own incremental
// decoder) are covered, since they reach the cache by different paths.
func TestRunWorkersEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-configuration benchmark run in -short mode")
	}
	ds := testDataset(t)
	engines := []struct {
		name string
		mk   func() vdbms.System
	}{
		{"scannerlike", func() vdbms.System { return scannerlike.New(scannerlike.Options{}) }},
		{"lightdblike", func() vdbms.System { return lightdblike.New(lightdblike.Options{}) }},
	}
	for _, eng := range engines {
		t.Run(eng.name, func(t *testing.T) {
			baseline := runForEquivalence(t, ds, eng.mk(), Options{Sequential: true})

			if st := baseline.report.DecodedCache; st.Hits != 0 || st.Misses != 0 {
				t.Errorf("sequential mode used the decoded cache: %+v", st)
			}

			serial := runForEquivalence(t, ds, eng.mk(), Options{Workers: 1})
			compareOutcomes(t, "workers=1", baseline, serial)
			if st := serial.report.DecodedCache; st.Misses == 0 {
				t.Error("cached run recorded no decode misses; cache appears disconnected")
			}

			wide := runForEquivalence(t, ds, eng.mk(), Options{Workers: 8})
			compareOutcomes(t, "workers=8", baseline, wide)

			prev := runtime.GOMAXPROCS(1)
			pinned := runForEquivalence(t, ds, eng.mk(), Options{Workers: 8})
			runtime.GOMAXPROCS(prev)
			compareOutcomes(t, "workers=8/GOMAXPROCS=1", baseline, pinned)
		})
	}
}
