package vcd

import (
	"fmt"
	"math"

	"repro/internal/alpr"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/queries"
	"repro/internal/vcity"
	"repro/internal/vdbms"
	"repro/internal/video"
)

// InstanceValidation captures one instance's outputs and validation
// verdicts. Most microbenchmark queries use frame validation: the VCD
// executes its reference implementation and compares frames by PSNR
// against the threshold (40 dB; 30 dB for the open-ended Q9 stitch).
// Q2(c) and Q2(d) additionally use semantic validation against the
// scene geometry that produced the input.
type InstanceValidation struct {
	Outputs map[string]*video.Video

	Checked bool
	PSNR    float64
	Passed  bool
	// Semantic validation (Q2(c): detections matched to scene objects
	// within Jaccard distance ε; Q2(d): foreground retention).
	SemanticChecked int
	SemanticPassed  int
	Err             error
}

// ValidationSummary aggregates a batch's validation results, providing
// the descriptive statistics the benchmark requires evaluators to
// report.
type ValidationSummary struct {
	Checked         int
	Passed          int
	PSNR            metrics.Stats
	SemanticChecked int
	SemanticPassed  int
}

// PassRate returns the fraction of checked instances that validated.
func (s ValidationSummary) PassRate() float64 {
	if s.Checked == 0 {
		return 0
	}
	return float64(s.Passed) / float64(s.Checked)
}

// SemanticPassRate returns the fraction of semantic checks that passed.
func (s ValidationSummary) SemanticPassRate() float64 {
	if s.SemanticChecked == 0 {
		return 0
	}
	return float64(s.SemanticPassed) / float64(s.SemanticChecked)
}

// jaccardEpsilon is the PASCAL VOC semantic validation threshold the
// prototype adopts (ε = 0.5).
const jaccardEpsilon = 0.5

type validator struct {
	ds  *Dataset
	opt Options
}

func newValidator(ds *Dataset, opt Options) *validator {
	return &validator{ds: ds, opt: opt}
}

// validate runs the reference implementation for the instance and fills
// the validation verdicts.
func (v *validator) validate(inst *vdbms.QueryInstance, val *InstanceValidation) {
	val.Checked = true
	// Q2(c) and Q2(d) are verified by semantic validation only, per the
	// paper; all other queries use frame validation against the
	// reference implementation.
	switch inst.Query {
	case queries.Q2c:
		val.Passed = true
		val.PSNR = -1
		v.semanticQ2c(inst, val)
		return
	case queries.Q2d:
		val.Passed = true
		val.PSNR = -1
		v.semanticQ2d(inst, val)
		return
	}
	refs, err := v.reference(inst)
	if err != nil {
		val.Err = fmt.Errorf("vcd: reference execution: %w", err)
		return
	}
	threshold := metrics.PSNRThreshold
	if inst.Query == queries.Q9 {
		threshold = 30 // the paper's "moderately similar" bound for stitching
	}
	val.Passed = true
	worst := math.Inf(1)
	for key, ref := range refs {
		out, ok := val.Outputs[key]
		if !ok {
			val.Passed = false
			val.Err = fmt.Errorf("vcd: system produced no output %q", key)
			return
		}
		p, err := metrics.VideoPSNR(out, ref)
		if err != nil {
			val.Passed = false
			val.Err = err
			return
		}
		if p < worst {
			worst = p
		}
		if p < threshold {
			val.Passed = false
		}
	}
	if !math.IsInf(worst, 1) {
		val.PSNR = worst
	} else {
		val.PSNR = 100
	}
}

// reference computes the reference output(s) for an instance.
func (v *validator) reference(inst *vdbms.QueryInstance) (map[string]*video.Video, error) {
	in := inst.Inputs[0]
	src, err := vdbms.DecodeInput(in)
	if err != nil {
		return nil, err
	}
	p := inst.Params
	out := map[string]*video.Video{}
	switch inst.Query {
	case queries.Q1:
		r, err := queries.RunQ1(src, p)
		if err != nil {
			return nil, err
		}
		out["out"] = r
	case queries.Q2a:
		out["out"] = queries.RunQ2a(src)
	case queries.Q2b:
		r, err := queries.RunQ2b(src, p)
		if err != nil {
			return nil, err
		}
		out["out"] = r
	case queries.Q2c:
		r, err := queries.RunQ2c(src, p, cheapEnv(in))
		if err != nil {
			return nil, err
		}
		out["out"] = r
	case queries.Q2d:
		r, err := queries.RunQ2d(src, p)
		if err != nil {
			return nil, err
		}
		out["out"] = r
	case queries.Q3:
		r, err := queries.RunQ3(src, p, in.Encoded.Config.Preset)
		if err != nil {
			return nil, err
		}
		out["out"] = r
	case queries.Q4:
		r, err := queries.RunQ4(src, p)
		if err != nil {
			return nil, err
		}
		out["out"] = r
	case queries.Q5:
		r, err := queries.RunQ5(src, p)
		if err != nil {
			return nil, err
		}
		out["out"] = r
	case queries.Q6a:
		cp := p
		if len(cp.Classes) == 0 {
			cp.Classes = allClasses()
		}
		cp.Algorithm = "yolov2"
		boxes, err := queries.RunQ2c(src, cp, cheapEnv(in))
		if err != nil {
			return nil, err
		}
		r, err := queries.RunQ6a(src, boxes)
		if err != nil {
			return nil, err
		}
		out["out"] = r
	case queries.Q6b:
		r, err := queries.RunQ6b(src, p)
		if err != nil {
			return nil, err
		}
		out["out"] = r
	case queries.Q7:
		rs, err := queries.RunQ7(src, p, cheapEnv(in))
		if err != nil {
			return nil, err
		}
		for k, r := range rs {
			out[k] = r
		}
	case queries.Q8:
		vids := make([]*video.Video, 0, len(inst.Inputs))
		envs := make([]*queries.Env, 0, len(inst.Inputs))
		for _, qin := range inst.Inputs {
			dv, err := vdbms.DecodeInput(qin)
			if err != nil {
				return nil, err
			}
			vids = append(vids, dv)
			envs = append(envs, qin.Env)
		}
		r, _, err := queries.RunQ8(vids, envs, alpr.New(), p.Plate)
		if err != nil {
			return nil, err
		}
		out["out"] = r
	case queries.Q9:
		return v.referenceQ9(inst)
	case queries.Q10:
		r, err := queries.RunQ10(src, p, in.Encoded.Config.Preset)
		if err != nil {
			return nil, err
		}
		out["out"] = r
	default:
		return nil, fmt.Errorf("vcd: no reference implementation for %s", inst.Query)
	}
	return out, nil
}

func (v *validator) referenceQ9(inst *vdbms.QueryInstance) (map[string]*video.Video, error) {
	var vids []*video.Video
	var cams []*vcity.Camera
	for _, qin := range inst.Inputs {
		dv, err := vdbms.DecodeInput(qin)
		if err != nil {
			return nil, err
		}
		vids = append(vids, dv)
		cams = append(cams, qin.Camera())
	}
	r, err := queries.RunQ9(vids, cams)
	if err != nil {
		return nil, err
	}
	return map[string]*video.Video{"out": r}, nil
}

// cheapEnv clones the input's environment with the detector's compute
// kernel disabled: the VCD's verification needs the detections (which
// depend only on seed, camera, and frame index), not the inference
// cost.
func cheapEnv(in *vdbms.Input) *queries.Env {
	env := *in.Env
	d := *env.Detector
	d.CostPasses = 0
	env.Detector = &d
	return &env
}

// semanticQ2c validates the engine's output against scene geometry:
// every clearly-visible, detection-eligible ground-truth object of a
// queried class should be substantially covered by pixels of that
// class's color in the output frame (i.e. the VDBMS drew a box within
// Jaccard distance ε of the real object). Each eligible object is one
// semantic check.
func (v *validator) semanticQ2c(inst *vdbms.QueryInstance, val *InstanceValidation) {
	out, ok := val.Outputs["out"]
	if !ok {
		val.Err = fmt.Errorf("vcd: Q2(c) produced no output")
		val.Passed = false
		return
	}
	in := inst.Inputs[0]
	env := in.Env
	tile := env.City.TileOf(env.Camera)
	noise := env.Detector.Noise
	for i, f := range out.Frames {
		t := env.FrameTime(i, out.FPS)
		for _, o := range tile.GroundTruth(env.Camera, t, f.W, f.H) {
			if !classRequested(inst.Params, o.Object.Class) {
				continue
			}
			// Only objects the specified model is expected to find are
			// eligible: unoccluded and comfortably above the small-
			// object regime.
			if o.Visibility < 0.95 || o.Box.Area() < noise.SmallAreaPx*1.5 {
				continue
			}
			val.SemanticChecked++
			if classCoverage(f, o.Box, queries.ClassColor(o.Object.Class)) >= 1-jaccardEpsilon {
				val.SemanticPassed++
			}
		}
	}
}

// classRequested reports whether the class is among the instance's
// queried classes.
func classRequested(p queries.Params, c vcity.ObjectClass) bool {
	for _, q := range p.Classes {
		if q == c {
			return true
		}
	}
	return false
}

// classCoverage returns the fraction of the box covered by pixels close
// to the class color.
func classCoverage(f *video.Frame, box geom.Rect, c video.Color) float64 {
	wy, wu, wv := c.YUV()
	x0 := geom.ClampInt(int(box.MinX), 0, f.W-1)
	x1 := geom.ClampInt(int(box.MaxX), 0, f.W)
	y0 := geom.ClampInt(int(box.MinY), 0, f.H-1)
	y1 := geom.ClampInt(int(box.MaxY), 0, f.H)
	var hit, total int
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			total++
			Y, U, V := f.At(x, y)
			if absInt(int(Y)-int(wy)) < 40 && absInt(int(U)-int(wu)) < 30 && absInt(int(V)-int(wv)) < 30 {
				hit++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hit) / float64(total)
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// semanticQ2d checks the masking output against geometry: pixels inside
// moving-object ground-truth boxes should be substantially retained
// (non-ω). Each frame is one semantic check.
func (v *validator) semanticQ2d(inst *vdbms.QueryInstance, val *InstanceValidation) {
	out, ok := val.Outputs["out"]
	if !ok {
		return
	}
	in := inst.Inputs[0]
	env := in.Env
	tile := env.City.TileOf(env.Camera)
	for i, f := range out.Frames {
		t := env.FrameTime(i, out.FPS)
		var kept, total int
		for _, o := range tile.GroundTruth(env.Camera, t, f.W, f.H) {
			if o.Visibility < 0.8 {
				continue
			}
			x0 := geom.ClampInt(int(o.Box.MinX), 0, f.W-1)
			x1 := geom.ClampInt(int(o.Box.MaxX), 0, f.W)
			y0 := geom.ClampInt(int(o.Box.MinY), 0, f.H-1)
			y1 := geom.ClampInt(int(o.Box.MaxY), 0, f.H)
			for y := y0; y < y1; y++ {
				for x := x0; x < x1; x++ {
					total++
					Y, U, V := f.At(x, y)
					if !queries.IsOmega(queries.Pixel{Y: Y, U: U, V: V}) {
						kept++
					}
				}
			}
		}
		if total == 0 {
			continue
		}
		val.SemanticChecked++
		// Moving objects should survive masking: at least a third of
		// their pixels retained (boxes include background corners, so
		// full retention is not expected).
		if float64(kept)/float64(total) >= 0.33 {
			val.SemanticPassed++
		}
	}
}

// summary aggregates instance validations.
func (v *validator) summary(insts []InstanceResult) ValidationSummary {
	return SummarizeValidation(insts)
}

func allClasses() []vcity.ObjectClass {
	return []vcity.ObjectClass{vcity.ClassVehicle, vcity.ClassPedestrian}
}
