package vcd

import (
	"encoding/json"
	"os"

	"repro/internal/metrics"
)

// ReportSummary is the machine-readable benchmark report: the global
// election (scale, resolution, mode) plus per-query runtime, throughput,
// and validation descriptive statistics, as §3.2 requires evaluators to
// report. It is what `vcd -json` prints and what vrserved persists per
// job.
type ReportSummary struct {
	System    string  `json:"system"`
	Scale     int     `json:"scale"`
	Mode      string  `json:"mode"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// DecodedCache carries the shared decoded-input cache counters with
	// their derived hit-rate and decode-ratio.
	DecodedCache metrics.CacheTelemetry `json:"decoded_cache"`
	// Telemetry is the run's stage-level observability record, present
	// when metrics are enabled (-metrics-json / -report / -debug-addr).
	Telemetry *metrics.Telemetry `json:"telemetry,omitempty"`
	Queries   []QuerySummary     `json:"queries"`
}

// QuerySummary is one query batch's row of the report.
type QuerySummary struct {
	Query          string  `json:"query"`
	Unsupported    bool    `json:"unsupported,omitempty"`
	BatchSize      int     `json:"batch_size"`
	Completed      int     `json:"completed"`
	ResourceErrors int     `json:"resource_errors,omitempty"`
	BatchSplits    int     `json:"batch_splits,omitempty"`
	ElapsedMS      float64 `json:"elapsed_ms"`
	Frames         int     `json:"frames"`
	FPS            float64 `json:"fps"`
	ValidatedPct   float64 `json:"validated_pct"`
	PSNRMean       float64 `json:"psnr_mean_db"`
	PSNRMin        float64 `json:"psnr_min_db"`
	SemanticPct    float64 `json:"semantic_pct"`
	// Telemetry is the batch's observability record, present when
	// metrics are enabled.
	Telemetry *metrics.Telemetry `json:"telemetry,omitempty"`
}

// Summarize flattens a RunReport into its serializable summary.
func Summarize(r *RunReport) ReportSummary {
	mode := "streaming"
	if r.Mode == WriteMode {
		mode = "write"
	}
	out := ReportSummary{
		System: r.System, Scale: r.Scale, Mode: mode,
		ElapsedMS:    r.Elapsed.Seconds() * 1000,
		DecodedCache: r.DecodedCache.Report(),
		Telemetry:    r.Telemetry,
	}
	for _, qr := range r.Queries {
		out.Queries = append(out.Queries, QuerySummary{
			Query:          string(qr.Query),
			Unsupported:    qr.Unsupported,
			BatchSize:      qr.BatchSize,
			Completed:      qr.Completed,
			ResourceErrors: qr.ResourceErrors,
			BatchSplits:    qr.BatchSplits,
			ElapsedMS:      qr.Elapsed.Seconds() * 1000,
			Frames:         qr.Frames,
			FPS:            qr.FPS(),
			ValidatedPct:   qr.Validation.PassRate() * 100,
			PSNRMean:       qr.Validation.PSNR.Mean,
			PSNRMin:        qr.Validation.PSNR.Min,
			SemanticPct:    qr.Validation.SemanticPassRate() * 100,
			Telemetry:      qr.Telemetry,
		})
	}
	return out
}

// Canonical strips the summary down to its deterministic content: what
// two runs of the same plan must agree on byte-for-byte. Timing
// (elapsed, fps), telemetry, and decoded-cache locality are excluded —
// they legitimately vary run to run and across topologies (per-worker
// caches split the hit pattern) — exactly the exclusion set the shard
// plane's equivalence tests use. Everything else (completions, frame
// counts, batch splits, validation statistics) is a pure function of
// seed, dataset, and configuration.
func (s ReportSummary) Canonical() ReportSummary {
	s.ElapsedMS = 0
	s.DecodedCache = metrics.CacheTelemetry{}
	s.Telemetry = nil
	qs := make([]QuerySummary, len(s.Queries))
	copy(qs, s.Queries)
	for i := range qs {
		qs[i].ElapsedMS = 0
		qs[i].FPS = 0
		qs[i].Telemetry = nil
	}
	s.Queries = qs
	return s
}

// MarshalReport renders a summary in the canonical artifact byte form:
// two-space indented JSON with a trailing newline.
func MarshalReport(s ReportSummary) ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteFileAtomic persists data at path via temp file + rename, so a
// crash never leaves a truncated artifact — the persistence primitive
// every report/journal writer shares.
func WriteFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// WriteReportFile persists a report summary atomically as JSON.
func WriteReportFile(path string, s ReportSummary) error {
	data, err := MarshalReport(s)
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, data)
}
