package vcd

import (
	"fmt"

	"repro/internal/codec"
	"repro/internal/queries"
	"repro/internal/vcity"
	"repro/internal/vdbms"
	"repro/internal/video"
)

// BuildBatch creates a query batch of n instances of q: for each
// instance the input video(s) are chosen at random and the free
// parameters drawn uniformly from their Table 3 domains. The VDBMS does
// not participate in parameter selection.
func BuildBatch(ds *Dataset, q queries.QueryID, n int, opt Options) ([]*vdbms.QueryInstance, error) {
	rng := vcity.NewRNG(opt.Seed ^ fnvID(string(q)))
	sampler := NewParamSampler(opt.Seed^fnvID(string(q)+"-params"),
		ds.Manifest.Width, ds.Manifest.Height, ds.Manifest.Duration)
	sampler.MaxUpsamplePixels = opt.MaxUpsamplePixels

	traffic := ds.TrafficCameraIDs()
	if len(traffic) == 0 {
		return nil, fmt.Errorf("vcd: dataset has no traffic cameras")
	}
	panoGroups := ds.PanoGroups()

	var out []*vdbms.QueryInstance
	for i := 0; i < n; i++ {
		inst := &vdbms.QueryInstance{Query: q}
		ctx := SampleContext{InputW: ds.Manifest.Width, InputH: ds.Manifest.Height}
		switch q {
		case queries.Q8:
			// Inputs: the traffic cameras of a random tile; the target
			// plate belongs to a vehicle of that tile.
			tile := rng.Intn(len(ds.City.Tiles))
			for _, id := range traffic {
				in, err := ds.Input(id)
				if err != nil {
					return nil, err
				}
				if in.Camera().Tile == tile {
					inst.Inputs = append(inst.Inputs, in)
				}
			}
			ctx.Plates = ds.TilePlates(tile)
		case queries.Q9:
			if len(panoGroups) == 0 {
				return nil, fmt.Errorf("vcd: dataset has no panoramic cameras")
			}
			group := panoGroups[rng.Intn(len(panoGroups))]
			for _, id := range group {
				in, err := ds.Input(id)
				if err != nil {
					return nil, err
				}
				inst.Inputs = append(inst.Inputs, in)
			}
		case queries.Q10:
			if len(panoGroups) == 0 {
				return nil, fmt.Errorf("vcd: dataset has no panoramic cameras")
			}
			group := panoGroups[rng.Intn(len(panoGroups))]
			in, err := ds.StitchedInput(group)
			if err != nil {
				return nil, err
			}
			inst.Inputs = []*vdbms.Input{in}
			w, h := 0, 0
			if len(in.Encoded.Frames) > 0 {
				w, h = in.Encoded.Config.Width, in.Encoded.Config.Height
			}
			ctx.InputW, ctx.InputH = w, h
		default:
			id := traffic[rng.Intn(len(traffic))]
			in, err := ds.Input(id)
			if err != nil {
				return nil, err
			}
			inst.Inputs = []*vdbms.Input{in}
			if q == queries.Q6b {
				doc, err := CaptionsOf(in)
				if err != nil {
					return nil, err
				}
				ctx.Captions = doc
			}
			if q == queries.Q6a {
				// The bounding box video is generated offline by the
				// VCD (§4.1.1) and staged alongside the input in both
				// interchange formats.
				boxes, err := ds.BoxesFor(in)
				if err != nil {
					return nil, err
				}
				inst.Boxes = boxes
			}
		}
		p, err := sampler.Sample(q, ctx)
		if err != nil {
			return nil, err
		}
		inst.Params = p
		out = append(out, inst)
	}
	return out, nil
}

// StitchedInput returns (computing and caching on first use) the 360°
// video for a panoramic group: U_i = Q9(V_i), built with the reference
// stitcher and re-encoded — the input staging the paper's Q10 requires.
func (d *Dataset) StitchedInput(group []string) (*vdbms.Input, error) {
	key := "stitched:" + group[0]
	d.mu.Lock()
	if in, ok := d.inputs[key]; ok {
		d.mu.Unlock()
		return in, nil
	}
	d.mu.Unlock()

	var vids []*video.Video
	var cams []*vcity.Camera
	var first *vdbms.Input
	for _, id := range group {
		in, err := d.Input(id)
		if err != nil {
			return nil, err
		}
		if first == nil {
			first = in
		}
		v, err := vdbms.DecodeInput(in)
		if err != nil {
			return nil, err
		}
		vids = append(vids, v)
		cams = append(cams, in.Camera())
	}
	stitched, err := queries.RunQ9(vids, cams)
	if err != nil {
		return nil, err
	}
	w, h := stitched.Resolution()
	enc, err := codec.EncodeVideo(stitched, codec.Config{
		Width: w, Height: h, FPS: stitched.FPS, QP: 22,
	})
	if err != nil {
		return nil, err
	}
	in := &vdbms.Input{
		Name:    key,
		Encoded: enc,
		Env:     first.Env,
		Source:  d,
	}
	d.mu.Lock()
	d.inputs[key] = in
	d.mu.Unlock()
	return in, nil
}

// BoxesFor returns (computing and caching on first use) the Q6(a)
// bounding-box input B = Q2c(V) for an input: the VCD applies its
// reference detection implementation offline and exposes the result as
// an encoded video and as serialized box records.
func (d *Dataset) BoxesFor(in *vdbms.Input) (*vdbms.BoxesInput, error) {
	key := "boxes:" + in.Name
	d.mu.Lock()
	if cached, ok := d.boxes[key]; ok {
		d.mu.Unlock()
		return cached, nil
	}
	d.mu.Unlock()

	src, err := vdbms.DecodeInput(in)
	if err != nil {
		return nil, err
	}
	env := *in.Env
	det := *env.Detector
	det.CostPasses = 0 // offline reference generation is not measured
	env.Detector = &det
	p := queries.Params{
		Algorithm: "yolov2",
		Classes:   []vcity.ObjectClass{vcity.ClassVehicle, vcity.ClassPedestrian},
	}
	dets, err := queries.DetectionsQ2c(src, p, &env)
	if err != nil {
		return nil, err
	}
	w, h := src.Resolution()
	boxVideo := queries.RenderBoxesVideo(w, h, src.FPS, dets, nil)
	enc, err := codec.EncodeVideo(boxVideo, codec.Config{
		Width: w, Height: h, FPS: src.FPS, QP: 6, // near-lossless: ω must survive
	})
	if err != nil {
		return nil, err
	}
	boxes := &vdbms.BoxesInput{
		Encoded:    enc,
		Serialized: queries.SerializeDetections(dets),
	}
	d.mu.Lock()
	if d.boxes == nil {
		d.boxes = make(map[string]*vdbms.BoxesInput)
	}
	d.boxes[key] = boxes
	d.mu.Unlock()
	return boxes, nil
}

func fnvID(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
