package vcd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/container"
	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/queries"
	"repro/internal/vcg"
	"repro/internal/vcity"
	"repro/internal/vdbms"
	"repro/internal/vfs"
	"repro/internal/video"
	"repro/internal/vtt"
)

// Dataset is a generated Visual Road dataset as staged for benchmarking:
// the manifest, the regenerated city (needed for ground truth — cities
// are pure functions of the hyperparameters, so regeneration is exact
// and cheap), and lazily demuxed inputs.
type Dataset struct {
	Manifest vcg.Manifest
	City     *vcity.City
	Store    vfs.Store

	detectorNoise detect.NoiseModel
	detectorSeed  uint64

	mu     sync.Mutex
	inputs map[string]*vdbms.Input
	boxes  map[string]*vdbms.BoxesInput

	// decoded is the shared decoded-input cache (nil when disabled);
	// staged inputs carry the dataset as their vdbms.DecodedSource so
	// every engine decode routes through it.
	decoded *decodedCache
}

// LoadDataset opens a dataset from a store written by the VCG. The
// detector noise profile selects the simulated model's calibration.
func LoadDataset(store vfs.Store, noise detect.NoiseModel) (*Dataset, error) {
	data, err := vfs.ReadAll(store, "manifest.json")
	if err != nil {
		return nil, fmt.Errorf("vcd: reading manifest: %w", err)
	}
	var man vcg.Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("vcd: parsing manifest: %w", err)
	}
	filter, err := vcg.BuildTileFilter(man.WeatherFilter, man.DensityFilter)
	if err != nil {
		return nil, err
	}
	city, err := vcity.Generate(vcity.Hyperparams{
		Scale: man.Scale, Width: man.Width, Height: man.Height,
		Duration: man.Duration, FPS: man.FPS, Seed: man.Seed,
		TileFilter: filter,
	})
	if err != nil {
		return nil, err
	}
	return &Dataset{
		Manifest:      man,
		City:          city,
		Store:         store,
		detectorNoise: noise,
		detectorSeed:  man.Seed ^ 0xde7ec7,
		inputs:        make(map[string]*vdbms.Input),
	}, nil
}

// Input stages the named camera's video (demuxing it on first use) and
// returns it with its execution environment.
func (d *Dataset) Input(cameraID string) (*vdbms.Input, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if in, ok := d.inputs[cameraID]; ok {
		return in, nil
	}
	data, err := vfs.ReadAll(d.Store, vcg.VideoName(cameraID))
	if err != nil {
		return nil, fmt.Errorf("vcd: staging %s: %w", cameraID, err)
	}
	enc, captions, err := container.Demux(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("vcd: demuxing %s: %w", cameraID, err)
	}
	cam, ok := d.City.CameraByID(cameraID)
	if !ok {
		return nil, fmt.Errorf("vcd: manifest video %s has no camera in the city", cameraID)
	}
	in := &vdbms.Input{
		Name:     cameraID,
		Encoded:  enc,
		Captions: captions,
		Env: &queries.Env{
			City:     d.City,
			Camera:   cam,
			Detector: detect.NewYOLO(d.detectorNoise, d.detectorSeed),
		},
		Source: d,
	}
	d.inputs[cameraID] = in
	return in, nil
}

// configureDecodedCache installs (or disables) the shared decoded-input
// cache for a run. budget < 0 disables the cache, 0 selects
// DefaultDecodedCacheBytes. Reconfiguring resets counters.
func (d *Dataset) configureDecodedCache(budget int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if budget < 0 {
		d.decoded = nil
		return
	}
	d.decoded = newDecodedCache(budget)
}

func (d *Dataset) decodedCache() *decodedCache {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.decoded
}

// Decoded implements vdbms.DecodedSource: decode through the shared
// cache when enabled, directly otherwise.
func (d *Dataset) Decoded(in *vdbms.Input) (*video.Video, error) {
	c := d.decodedCache()
	if c == nil {
		return vdbms.DecodeAll(in.Encoded)
	}
	return c.acquire(in.Name, func() (*video.Video, error) {
		return vdbms.DecodeAll(in.Encoded)
	})
}

// DecodedShared implements vdbms.SharedDecodedSource: decode through
// the shared cache when one is active, reporting ok=false otherwise so
// streaming engines keep their own incremental path in sequential mode.
func (d *Dataset) DecodedShared(in *vdbms.Input) (*video.Video, bool, error) {
	c := d.decodedCache()
	if c == nil {
		return nil, false, nil
	}
	v, err := c.acquire(in.Name, func() (*video.Video, error) {
		return vdbms.DecodeAll(in.Encoded)
	})
	return v, true, err
}

// DecodedIfCached implements vdbms.CachedDecodedSource.
func (d *Dataset) DecodedIfCached(in *vdbms.Input) (*video.Video, bool) {
	c := d.decodedCache()
	if c == nil {
		return nil, false
	}
	return c.peek(in.Name)
}

// DecodedCacheStats snapshots the shared decoded-input cache counters
// (zero stats when the cache is disabled).
func (d *Dataset) DecodedCacheStats() metrics.CacheStats {
	c := d.decodedCache()
	if c == nil {
		return metrics.CacheStats{}
	}
	return c.stats()
}

// pinInputs pins an instance's inputs in the decoded cache for the span
// of its execution so concurrent instances sharing an input cannot have
// it evicted out from under them. Returns the matching unpin.
func (d *Dataset) pinInputs(inst *vdbms.QueryInstance) func() {
	c := d.decodedCache()
	if c == nil {
		return func() {}
	}
	names := make([]string, 0, len(inst.Inputs))
	for _, in := range inst.Inputs {
		c.pin(in.Name)
		names = append(names, in.Name)
	}
	return func() {
		for _, n := range names {
			c.unpin(n)
		}
	}
}

// TrafficCameraIDs returns the dataset's traffic camera IDs in stable
// order.
func (d *Dataset) TrafficCameraIDs() []string {
	var out []string
	for _, v := range d.Manifest.Videos {
		if v.Kind == vcity.TrafficCamera.String() {
			out = append(out, v.CameraID)
		}
	}
	sort.Strings(out)
	return out
}

// PanoGroups returns the panoramic groups: each entry is the four
// sub-camera IDs of one panoramic camera, sub-index order.
func (d *Dataset) PanoGroups() [][]string {
	groups := map[string][]string{}
	for _, v := range d.Manifest.Videos {
		if v.Kind != vcity.PanoramicSubCamera.String() {
			continue
		}
		key := v.CameraID[:strings.LastIndex(v.CameraID, "-sub")]
		groups[key] = append(groups[key], v.CameraID)
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]string, 0, len(keys))
	for _, k := range keys {
		ids := groups[k]
		sort.Strings(ids)
		out = append(out, ids)
	}
	return out
}

// TilePlates returns the license plates of all vehicles in the given
// tile — the candidate pool for Q8 parameter sampling.
func (d *Dataset) TilePlates(tile int) []string {
	var out []string
	for _, v := range d.City.Tiles[tile].Vehicles {
		out = append(out, v.Plate)
	}
	return out
}

// CaptionsOf parses the embedded WebVTT track of an input.
func CaptionsOf(in *vdbms.Input) (*vtt.Document, error) {
	if len(in.Captions) == 0 {
		return nil, fmt.Errorf("vcd: input %s has no caption track", in.Name)
	}
	return vtt.Parse(in.Captions)
}
