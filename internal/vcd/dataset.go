package vcd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/container"
	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/queries"
	"repro/internal/vcg"
	"repro/internal/vcity"
	"repro/internal/vdbms"
	"repro/internal/vfs"
	"repro/internal/video"
	"repro/internal/vtt"
)

// Dataset is a generated Visual Road dataset as staged for benchmarking:
// the manifest, the regenerated city (needed for ground truth — cities
// are pure functions of the hyperparameters, so regeneration is exact
// and cheap), and lazily demuxed inputs.
type Dataset struct {
	Manifest vcg.Manifest
	City     *vcity.City
	Store    vfs.Store

	detectorNoise detect.NoiseModel
	detectorSeed  uint64

	mu     sync.Mutex
	inputs map[string]*vdbms.Input
	boxes  map[string]*vdbms.BoxesInput

	// decoded is the shared decoded-input cache (nil when disabled);
	// staged inputs carry the dataset as their vdbms.DecodedSource so
	// every engine decode routes through it.
	decoded *decodedCache
	// fullDecode forces ranged requests onto the pre-range whole-clip
	// decode path (decode all, slice afterwards) — the baseline the
	// equivalence tests and range benchmarks compare against.
	fullDecode bool
}

// LoadDataset opens a dataset from a store written by the VCG. The
// detector noise profile selects the simulated model's calibration.
func LoadDataset(store vfs.Store, noise detect.NoiseModel) (*Dataset, error) {
	data, err := vfs.ReadAll(store, "manifest.json")
	if err != nil {
		return nil, fmt.Errorf("vcd: reading manifest: %w", err)
	}
	var man vcg.Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("vcd: parsing manifest: %w", err)
	}
	filter, err := vcg.BuildTileFilter(man.WeatherFilter, man.DensityFilter)
	if err != nil {
		return nil, err
	}
	city, err := vcity.Generate(vcity.Hyperparams{
		Scale: man.Scale, Width: man.Width, Height: man.Height,
		Duration: man.Duration, FPS: man.FPS, Seed: man.Seed,
		TileFilter: filter,
	})
	if err != nil {
		return nil, err
	}
	return &Dataset{
		Manifest:      man,
		City:          city,
		Store:         store,
		detectorNoise: noise,
		detectorSeed:  man.Seed ^ 0xde7ec7,
		inputs:        make(map[string]*vdbms.Input),
	}, nil
}

// Input stages the named camera's video (demuxing it on first use) and
// returns it with its execution environment.
func (d *Dataset) Input(cameraID string) (*vdbms.Input, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if in, ok := d.inputs[cameraID]; ok {
		return in, nil
	}
	data, err := vfs.ReadAll(d.Store, vcg.VideoName(cameraID))
	if err != nil {
		return nil, fmt.Errorf("vcd: staging %s: %w", cameraID, err)
	}
	enc, captions, err := container.Demux(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("vcd: demuxing %s: %w", cameraID, err)
	}
	cam, ok := d.City.CameraByID(cameraID)
	if !ok {
		return nil, fmt.Errorf("vcd: manifest video %s has no camera in the city", cameraID)
	}
	in := &vdbms.Input{
		Name:     cameraID,
		Encoded:  enc,
		Captions: captions,
		Env: &queries.Env{
			City:     d.City,
			Camera:   cam,
			Detector: detect.NewYOLO(d.detectorNoise, d.detectorSeed),
		},
		Source: d,
	}
	d.inputs[cameraID] = in
	return in, nil
}

// configureDecodedCache installs (or disables) the shared decoded-input
// cache for a run. budget < 0 disables the cache, 0 selects
// DefaultDecodedCacheBytes. fullDecode forces ranged requests onto the
// whole-clip decode path (the pre-range baseline). Reconfiguring resets
// counters.
func (d *Dataset) configureDecodedCache(budget int64, fullDecode bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.fullDecode = fullDecode
	if budget < 0 {
		d.decoded = nil
		return
	}
	d.decoded = newDecodedCache(budget)
}

func (d *Dataset) decodedCache() (*decodedCache, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.decoded, d.fullDecode
}

// decodeFull decodes an input's whole payload — the one full-clip
// decode path behind every source method.
func decodeFull(in *vdbms.Input) (*video.Video, error) {
	return vdbms.DecodeAll(in.Encoded)
}

// fillFor returns the cache fill function for an input: whole-clip
// requests take the full GOP-parallel decode, partial windows the
// GOP-bounded range decode.
func fillFor(in *vdbms.Input) func(lo, hi int) (*video.Video, error) {
	return func(lo, hi int) (*video.Video, error) {
		if lo == 0 && hi == len(in.Encoded.Frames) {
			return decodeFull(in)
		}
		return vdbms.DecodeRange(in.Encoded, lo, hi)
	}
}

// Decoded implements vdbms.DecodedSource: decode through the shared
// cache when enabled, directly otherwise.
func (d *Dataset) Decoded(in *vdbms.Input) (*video.Video, error) {
	c, _ := d.decodedCache()
	if c == nil {
		return decodeFull(in)
	}
	return c.acquire(in.Name, 0, len(in.Encoded.Frames), 0, nil, fillFor(in))
}

// DecodedRange implements vdbms.RangedDecodedSource: serve frames
// [first, last) of an input from the interval-keyed cache, decoding
// from the governing keyframe only when no resident window covers the
// request. In full-decode mode (the pre-range baseline) the window is
// sliced out of a whole-clip decode instead.
func (d *Dataset) DecodedRange(in *vdbms.Input, first, last int) (*video.Video, error) {
	n := len(in.Encoded.Frames)
	if first == 0 && last == n {
		return d.Decoded(in)
	}
	c, full := d.decodedCache()
	if full {
		v, err := d.Decoded(in)
		if err != nil {
			return nil, err
		}
		return sliceDecoded(v, first, last)
	}
	if c == nil {
		return vdbms.DecodeRange(in.Encoded, first, last)
	}
	if first >= last {
		// Degenerate window: validate bounds without touching the cache.
		return vdbms.DecodeRange(in.Encoded, first, last)
	}
	return c.acquire(in.Name, first, last, 0, in.Encoded.KeyframeBefore, fillFor(in))
}

// tileMask folds a tile index list into the cache's uint64 selection
// mask. Indices are grid positions, already validated against the grid
// (the codec caps grids at 64 tiles, so every index fits the mask).
func tileMask(tiles []int) uint64 {
	var m uint64
	for _, t := range tiles {
		m |= 1 << uint(t)
	}
	return m
}

// tileFillFor returns the cache fill function for a (window × tile-set)
// request: tile-parallel partial decode of the selected tiles only.
func tileFillFor(in *vdbms.Input, tiles []int) func(lo, hi int) (*video.Video, error) {
	return func(lo, hi int) (*video.Video, error) {
		return vdbms.DecodeTiles(in.Encoded, lo, hi, tiles)
	}
}

// DecodedTiles implements vdbms.TiledDecodedSource: serve the (frame
// window × tile set) rectangle of a tile-mode input from the
// (interval × tile-set)-keyed cache, decoding only the selected tiles
// on a miss. A resident full-frame window covering the interval serves
// any tile set without a decode. In full-decode mode the rectangle is
// sliced out of a whole-clip decode instead (the baseline superset).
func (d *Dataset) DecodedTiles(in *vdbms.Input, first, last int, tiles []int) (*video.Video, error) {
	mask := tileMask(tiles)
	c, full := d.decodedCache()
	if full || mask == 0 {
		// Full frames are a correct superset of any tile set.
		return d.DecodedRange(in, first, last)
	}
	if c == nil || first >= last {
		return vdbms.DecodeTiles(in.Encoded, first, last, tiles)
	}
	return c.acquire(in.Name, first, last, mask, in.Encoded.KeyframeBefore, tileFillFor(in, tiles))
}

// DecodedSharedTiles implements vdbms.SharedTiledDecodedSource: the
// tiled analogue of DecodedSharedRange.
func (d *Dataset) DecodedSharedTiles(in *vdbms.Input, first, last int, tiles []int) (*video.Video, bool, error) {
	c, _ := d.decodedCache()
	if c == nil {
		return nil, false, nil
	}
	v, err := d.DecodedTiles(in, first, last, tiles)
	return v, true, err
}

// DecodedShared implements vdbms.SharedDecodedSource: decode through
// the shared cache when one is active, reporting ok=false otherwise so
// streaming engines keep their own incremental path in sequential mode.
func (d *Dataset) DecodedShared(in *vdbms.Input) (*video.Video, bool, error) {
	c, _ := d.decodedCache()
	if c == nil {
		return nil, false, nil
	}
	v, err := d.Decoded(in)
	return v, true, err
}

// DecodedSharedRange implements vdbms.SharedRangedDecodedSource: the
// ranged analogue of DecodedShared.
func (d *Dataset) DecodedSharedRange(in *vdbms.Input, first, last int) (*video.Video, bool, error) {
	c, _ := d.decodedCache()
	if c == nil {
		return nil, false, nil
	}
	v, err := d.DecodedRange(in, first, last)
	return v, true, err
}

// DecodedIfCached implements vdbms.CachedDecodedSource.
func (d *Dataset) DecodedIfCached(in *vdbms.Input) (*video.Video, bool) {
	c, _ := d.decodedCache()
	if c == nil {
		return nil, false
	}
	return c.peek(in.Name, 0, len(in.Encoded.Frames))
}

// sliceDecoded views frames [first, last) of a whole-clip decode (the
// full-decode baseline path).
func sliceDecoded(v *video.Video, first, last int) (*video.Video, error) {
	if first < 0 || last > len(v.Frames) || first > last {
		return nil, fmt.Errorf("vcd: frame range [%d, %d) outside [0, %d]", first, last, len(v.Frames))
	}
	return &video.Video{FPS: v.FPS, Frames: v.Frames[first:last]}, nil
}

// DecodedCacheStats snapshots the shared decoded-input cache counters
// (zero stats when the cache is disabled).
func (d *Dataset) DecodedCacheStats() metrics.CacheStats {
	c, _ := d.decodedCache()
	if c == nil {
		return metrics.CacheStats{}
	}
	return c.stats()
}

// pinInputs pins the frame windows an instance declares on its inputs
// in the decoded cache for the span of its execution, so concurrent
// instances sharing (part of) an input cannot have the covering window
// evicted out from under them. Returns the matching unpin.
func (d *Dataset) pinInputs(inst *vdbms.QueryInstance) func() {
	c, _ := d.decodedCache()
	if c == nil {
		return func() {}
	}
	type pinned struct {
		name   string
		lo, hi int
	}
	pins := make([]pinned, 0, len(inst.Inputs))
	for _, in := range inst.Inputs {
		lo, hi := instanceWindow(inst, in)
		c.pin(in.Name, lo, hi)
		pins = append(pins, pinned{in.Name, lo, hi})
	}
	return func() {
		for _, p := range pins {
			c.unpin(p.name, p.lo, p.hi)
		}
	}
}

// instanceWindow returns the frame window an instance declares on an
// input — the plan-level range the decode layer serves. Degenerate
// windows pin the whole clip (the conservative choice).
func instanceWindow(inst *vdbms.QueryInstance, in *vdbms.Input) (lo, hi int) {
	n := len(in.Encoded.Frames)
	lo, hi, windowed := queries.FrameWindow(inst.Query, inst.Params, in.Encoded.Config.FPS, n)
	if !windowed || hi <= lo {
		return 0, n
	}
	return lo, hi
}

// TrafficCameraIDs returns the dataset's traffic camera IDs in stable
// order.
func (d *Dataset) TrafficCameraIDs() []string {
	var out []string
	for _, v := range d.Manifest.Videos {
		if v.Kind == vcity.TrafficCamera.String() {
			out = append(out, v.CameraID)
		}
	}
	sort.Strings(out)
	return out
}

// PanoGroups returns the panoramic groups: each entry is the four
// sub-camera IDs of one panoramic camera, sub-index order.
func (d *Dataset) PanoGroups() [][]string {
	groups := map[string][]string{}
	for _, v := range d.Manifest.Videos {
		if v.Kind != vcity.PanoramicSubCamera.String() {
			continue
		}
		key := v.CameraID[:strings.LastIndex(v.CameraID, "-sub")]
		groups[key] = append(groups[key], v.CameraID)
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]string, 0, len(keys))
	for _, k := range keys {
		ids := groups[k]
		sort.Strings(ids)
		out = append(out, ids)
	}
	return out
}

// TilePlates returns the license plates of all vehicles in the given
// tile — the candidate pool for Q8 parameter sampling.
func (d *Dataset) TilePlates(tile int) []string {
	var out []string
	for _, v := range d.City.Tiles[tile].Vehicles {
		out = append(out, v.Plate)
	}
	return out
}

// CaptionsOf parses the embedded WebVTT track of an input.
func CaptionsOf(in *vdbms.Input) (*vtt.Document, error) {
	if len(in.Captions) == 0 {
		return nil, fmt.Errorf("vcd: input %s has no caption track", in.Name)
	}
	return vtt.Parse(in.Captions)
}
