package vcd

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/detect"
	"repro/internal/vcg"
	"repro/internal/vcity"
	"repro/internal/vdbms"
	"repro/internal/vdbms/lightdblike"
	"repro/internal/vdbms/noscopelike"
	"repro/internal/vdbms/scannerlike"
	"repro/internal/vfs"
)

// tiledTestDataset generates a model-scale dataset whose videos are
// encoded in tile mode with the given grid.
func tiledTestDataset(t *testing.T, rows, cols int) *Dataset {
	t.Helper()
	store := vfs.NewMemory()
	_, err := vcg.Generate(vcity.Hyperparams{
		Scale: 1, Width: 128, Height: 96, Duration: 1.0, FPS: 15, Seed: 7,
	}, vcg.Options{Captions: true, QP: 18, TileRows: rows, TileCols: cols}, store)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := LoadDataset(store, detect.ProfileSynthetic)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestRunTileDecodeEquivalence is the tile-aware decode contract at the
// driver level: on a tile-mode dataset, serving Q1's (frame window ×
// ROI) rectangle by tile-subset decode must be observably identical —
// per-instance results, validation verdicts, and persisted result
// bytes — to the full-decode baseline that reconstructs whole frames of
// the same bitstream. All three engine families are covered because
// each reaches the tiles by a different route: scannerlike ingests
// tile-scoped tables, lightdblike bounds its angular Select's pixel
// footprint, and noscopelike decodes the declared rectangle up front.
func TestRunTileDecodeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-configuration benchmark run in -short mode")
	}
	engines := []struct {
		name string
		mk   func() vdbms.System
	}{
		{"scannerlike", func() vdbms.System { return scannerlike.New(scannerlike.Options{}) }},
		{"lightdblike", func() vdbms.System { return lightdblike.New(lightdblike.Options{}) }},
		{"noscopelike", func() vdbms.System { return noscopelike.NewDefault() }},
	}
	for _, grid := range [][2]int{{2, 2}, {3, 2}} {
		rows, cols := grid[0], grid[1]
		ds := tiledTestDataset(t, rows, cols)
		for _, eng := range engines {
			if rows == 3 && eng.name != "noscopelike" {
				continue // one engine suffices for the second grid
			}
			t.Run(fmt.Sprintf("%dx%d/%s", rows, cols, eng.name), func(t *testing.T) {
				baseline := runWindowed(t, ds, eng.mk(), Options{Workers: 1, FullDecode: true})

				tiled := runWindowed(t, ds, eng.mk(), Options{Workers: 1})
				compareOutcomes(t, "tile/workers=1", baseline, tiled)

				// The tile path can only narrow decode work, never widen it.
				fullSt := baseline.report.DecodedCache
				tileSt := tiled.report.DecodedCache
				if tileSt.FramesRequested == 0 {
					t.Error("tiled run requested no frames through the decoded cache")
				}
				if tileSt.FramesRequested > fullSt.FramesRequested {
					t.Errorf("tiled run requested %d frames, full-decode baseline %d",
						tileSt.FramesRequested, fullSt.FramesRequested)
				}

				wide := runWindowed(t, ds, eng.mk(), Options{Workers: 8})
				compareOutcomes(t, "tile/workers=8", baseline, wide)

				prev := runtime.GOMAXPROCS(1)
				pinned := runWindowed(t, ds, eng.mk(), Options{Workers: 8})
				runtime.GOMAXPROCS(prev)
				compareOutcomes(t, "tile/workers=8/GOMAXPROCS=1", baseline, pinned)
			})
		}
	}
}

// TestDatasetDecodedTiles pins the tile-keyed cache semantics at the
// Dataset layer: tile requests decode only their tile set, the selected
// regions are byte-identical to a full decode, a resident full-frame
// window serves tile requests without a decode, and peek (a full-frame
// contract) is never served by a tiled window.
func TestDatasetDecodedTiles(t *testing.T) {
	ds := tiledTestDataset(t, 2, 2)
	ds.configureDecodedCache(0, false)
	ids := ds.TrafficCameraIDs()
	if len(ids) == 0 {
		t.Fatal("dataset has no traffic cameras")
	}
	in, err := ds.Input(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	cfg := in.Encoded.Config
	n := len(in.Encoded.Frames)
	rects := cfg.TileRects()

	// ROI covering tile 0 only.
	r0 := rects[0]
	tiles, all := vdbms.InputTiles(in, 0, 0, r0.W, r0.H)
	if all || len(tiles) != 1 || tiles[0] != 0 {
		t.Fatalf("tile-0 ROI mapped to tiles %v (all=%v)", tiles, all)
	}

	v, err := ds.DecodedTiles(in, 0, n, tiles)
	if err != nil {
		t.Fatal(err)
	}
	full, err := ds.DecodedRange(in, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range full.Frames {
		want := full.Frames[i].Crop(0, 0, r0.W, r0.H)
		got := v.Frames[i].Crop(0, 0, r0.W, r0.H)
		if !bytes.Equal(want.Y, got.Y) || !bytes.Equal(want.U, got.U) || !bytes.Equal(want.V, got.V) {
			t.Fatalf("frame %d: tile-decoded ROI differs from full decode", i)
		}
	}

	// The tiled and full-frame windows coexist under different masks;
	// peek only ever serves from the full-frame one.
	if _, ok := ds.DecodedIfCached(in); !ok {
		t.Fatal("full-frame window not resident after DecodedRange")
	}
	st := ds.DecodedCacheStats()

	// A tile request covered by the resident full-frame window hits.
	if _, err := ds.DecodedTiles(in, 0, n, []int{3}); err != nil {
		t.Fatal(err)
	}
	if got := ds.DecodedCacheStats(); got.Hits != st.Hits+1 || got.Misses != st.Misses {
		t.Fatalf("tile request over full-frame window: hits %d→%d misses %d→%d, want a hit",
			st.Hits, got.Hits, st.Misses, got.Misses)
	}

	// A fresh cache serves repeated same-tile requests from the tiled
	// window, and peek stays cold (no full-frame window resident).
	ds.configureDecodedCache(0, false)
	if _, err := ds.DecodedTiles(in, 0, n, tiles); err != nil {
		t.Fatal(err)
	}
	if _, ok := ds.DecodedIfCached(in); ok {
		t.Fatal("peek served from a tiled window")
	}
	if _, err := ds.DecodedTiles(in, 0, n, tiles); err != nil {
		t.Fatal(err)
	}
	if got := ds.DecodedCacheStats(); got.Hits != 1 || got.Misses != 1 {
		t.Fatalf("repeat tile request: %d hits / %d misses, want 1 / 1", got.Hits, got.Misses)
	}
}
