package vcd

import (
	"fmt"
	"io"
	"time"

	"repro/internal/queries"
	"repro/internal/stream"
	"repro/internal/vdbms"
	"repro/internal/video"
)

// Online mode simulates real-time video processing: the VCD exposes a
// camera's encoded stream through a forward-only transport throttled to
// the capture rate (a pipe, standing in for named pipes, or RTP), and
// the system under test consumes it frame by frame with no knowledge of
// the total duration. Results are reported in frames per second, as the
// paper requires for online queries.
//
// Of the three bundled engines only the LightDB-like streaming engine
// can meaningfully consume a live source (the paper likewise notes that
// "neither Scanner nor NoScope support operating on live-streaming
// video data"); the online driver therefore runs the streaming query
// directly against a Reader.

// OnlineTransport selects the online delivery mechanism.
type OnlineTransport int

// The transports of Section 3.2: a named pipe on a local filesystem or
// RTP.
const (
	TransportPipe OnlineTransport = iota
	TransportRTP
)

// OnlineReport summarizes one online query execution.
type OnlineReport struct {
	Query     queries.QueryID
	Transport OnlineTransport
	Frames    int
	Elapsed   time.Duration
	// FPS is the achieved processing rate. A system keeping up with the
	// camera reports ≈ the capture rate; a slower system reports less.
	FPS float64
}

// frameProcessor is a per-frame streaming kernel for the online-capable
// query subset.
type frameProcessor func(i int, f *video.Frame) (*video.Frame, error)

// onlineKernel builds the streaming kernel for an online-capable query.
func onlineKernel(q queries.QueryID, p queries.Params, in *vdbms.Input) (frameProcessor, error) {
	switch q {
	case queries.Q1:
		cfg := in.Encoded.Config
		f1 := int(p.T1 * float64(cfg.FPS))
		f2 := int(p.T2*float64(cfg.FPS) + 0.999)
		return func(i int, f *video.Frame) (*video.Frame, error) {
			if i < f1 || i >= f2 {
				return nil, nil
			}
			return f.Crop(p.X1, p.Y1, p.X2, p.Y2), nil
		}, nil
	case queries.Q2a:
		return func(i int, f *video.Frame) (*video.Frame, error) {
			return f.Grayscale(), nil
		}, nil
	case queries.Q2c:
		env := in.Env
		tile := env.City.TileOf(env.Camera)
		cp := p
		return func(i int, f *video.Frame) (*video.Frame, error) {
			t := env.FrameTime(i, in.Encoded.Config.FPS)
			obs := tile.GroundTruth(env.Camera, t, f.W, f.H)
			env.Detector.Detect(f, env.Camera.ID, obs)
			_ = cp
			return f, nil
		}, nil
	case queries.Q5:
		return func(i int, f *video.Frame) (*video.Frame, error) {
			nw, nh := f.W/p.Alpha, f.H/p.Beta
			if nw < 1 {
				nw = 1
			}
			if nh < 1 {
				nh = 1
			}
			return f.Downsample(nw, nh), nil
		}, nil
	}
	return nil, fmt.Errorf("vcd: query %s has no online kernel", q)
}

// RunOnline executes one query instance against a live-paced stream of
// the instance's first input, delivered over the chosen transport, and
// reports the achieved frame rate. clock may be nil for wall-clock
// pacing or a fake clock for tests.
func RunOnline(inst *vdbms.QueryInstance, transport OnlineTransport, clock stream.Clock, sink vdbms.Sink) (*OnlineReport, error) {
	if clock == nil {
		clock = stream.RealClock{}
	}
	in := inst.Inputs[0]
	kernel, err := onlineKernel(inst.Query, inst.Params, in)
	if err != nil {
		return nil, err
	}
	cfg := in.Encoded.Config

	var next func() ([]byte, error)
	switch transport {
	case TransportPipe:
		p := stream.NewPipe(4)
		go stream.PumpVideo(p, in.Encoded, clock)
		next = func() ([]byte, error) {
			au, err := p.Next()
			if err != nil {
				return nil, err
			}
			return au.Data, nil
		}
	case TransportRTP:
		addr, errc, err := stream.ServeRTP(in.Encoded, clock)
		if err != nil {
			return nil, err
		}
		recv, err := dialRTP(addr)
		if err != nil {
			return nil, err
		}
		defer recv.Close()
		drained := false
		next = func() ([]byte, error) {
			au, err := recv.NextAccessUnit()
			if err == io.EOF && !drained {
				drained = true
				if serr := <-errc; serr != nil {
					return nil, serr
				}
			}
			return au, err
		}
	default:
		return nil, fmt.Errorf("vcd: unknown transport %d", transport)
	}

	dec, err := newOnlineDecoder(cfg)
	if err != nil {
		return nil, err
	}
	out := video.NewVideo(cfg.FPS)
	start := time.Now()
	i := 0
	for {
		au, err := next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		f, err := dec.Decode(au)
		if err != nil {
			return nil, err
		}
		f.Index = i
		g, err := kernel(i, f)
		if err != nil {
			return nil, err
		}
		if g != nil {
			out.Append(g)
		}
		i++
	}
	elapsed := time.Since(start)
	if sink != nil {
		if err := sink.Emit("out", out); err != nil {
			return nil, err
		}
	}
	rep := &OnlineReport{
		Query: inst.Query, Transport: transport,
		Frames: i, Elapsed: elapsed,
	}
	if elapsed > 0 {
		rep.FPS = float64(i) / elapsed.Seconds()
	}
	return rep, nil
}
