package vcd

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/queries"
	"repro/internal/render"
	"repro/internal/stream"
	"repro/internal/vcity"
	"repro/internal/vdbms"
	"repro/internal/video"
)

// Online mode simulates real-time video processing: the VCD exposes a
// camera's encoded stream through a forward-only transport throttled to
// the capture rate (a pipe, standing in for named pipes, or RTP), and
// the system under test consumes it frame by frame with no knowledge of
// the total duration. Results are reported in frames per second, as the
// paper requires for online queries.
//
// Because online delivery crosses goroutines and real sockets, the run
// is governed by a context (cancellation and per-stream deadlines
// unwind producer and consumer without leaking either), survives
// transport faults by resynchronizing at the next intra frame, and
// accounts for every frame the faults cost (FramesDropped, Gaps,
// Resyncs, Retries, Degraded on the report).
//
// Of the three bundled engines only the LightDB-like streaming engine
// can meaningfully consume a live source (the paper likewise notes that
// "neither Scanner nor NoScope support operating on live-streaming
// video data"); the online driver therefore runs the streaming query
// directly against a Reader.

// OnlineTransport selects the online delivery mechanism.
type OnlineTransport int

// The transports of Section 3.2: a named pipe on a local filesystem or
// RTP.
const (
	TransportPipe OnlineTransport = iota
	TransportRTP
)

// String names the transport for reports.
func (t OnlineTransport) String() string {
	if t == TransportRTP {
		return "rtp"
	}
	return "pipe"
}

// MarshalJSON writes the transport by name, keeping the report schema
// readable.
func (t OnlineTransport) MarshalJSON() ([]byte, error) {
	return []byte(`"` + t.String() + `"`), nil
}

// OnlineOptions configures one online query execution.
type OnlineOptions struct {
	// Transport selects the delivery mechanism (default pipe).
	Transport OnlineTransport
	// Clock paces the stream; nil uses the wall clock. Elapsed/FPS on
	// the report are measured on this clock, so fake-clock tests see
	// the simulated rate, not wall time.
	Clock stream.Clock
	// Sink receives the processed output video (may be nil).
	Sink vdbms.Sink
	// Faults is the deterministic fault schedule to inject (nil = ideal
	// channel).
	Faults *stream.FaultPlan
	// Timeout bounds the whole session (0 = none); on expiry the run
	// unwinds with context.DeadlineExceeded and no goroutine leaks.
	Timeout time.Duration
	// Retry bounds transient dial failures (zero value = defaults).
	Retry stream.RetryPolicy
}

// OnlineReport summarizes one online query execution, including the
// degradation accounting a faulted run accumulates.
type OnlineReport struct {
	Query     queries.QueryID `json:"query"`
	Transport OnlineTransport `json:"transport"`
	// Frames is the number of frames decoded and processed.
	Frames int `json:"frames"`
	// FramesDropped counts source frames lost to transport faults:
	// dropped packets, discarded partial access units, corrupt frames,
	// and inter frames skipped while waiting for a resync keyframe.
	FramesDropped int `json:"frames_dropped"`
	// Gaps counts RTP sequence discontinuities observed.
	Gaps int `json:"gaps"`
	// Resyncs counts recoveries: decoding resumed at an intra frame
	// after a gap or corruption.
	Resyncs int `json:"resyncs"`
	// Retries counts transient connection attempts beyond the first.
	Retries int `json:"retries"`
	// Degraded is set when any fault affected the stream; a clean run
	// reports false and byte-identical output to offline execution.
	Degraded bool          `json:"degraded"`
	Elapsed  time.Duration `json:"elapsed_ns"`
	// FPS is the achieved processing rate on the session clock. A
	// system keeping up with the camera reports ≈ the capture rate; a
	// slower system reports less.
	FPS float64 `json:"fps"`
}

// frameProcessor is a per-frame streaming kernel for the online-capable
// query subset.
type frameProcessor func(i int, f *video.Frame) (*video.Frame, error)

// onlineKernel builds the streaming kernel for an online-capable query.
// Kernels receive the source frame index (not the arrival ordinal), so
// temporal windows and ground-truth lookups stay aligned with the
// camera even when faults drop frames.
func onlineKernel(q queries.QueryID, p queries.Params, in *vdbms.Input) (frameProcessor, error) {
	switch q {
	case queries.Q1:
		cfg := in.Encoded.Config
		// The same plan-level window declaration the offline engines
		// consume, so online and offline Q1 select identical frames.
		f1, f2, _ := queries.FrameWindow(q, p, cfg.FPS, len(in.Encoded.Frames))
		return func(i int, f *video.Frame) (*video.Frame, error) {
			if i < f1 || i >= f2 {
				return nil, nil
			}
			return f.Crop(p.X1, p.Y1, p.X2, p.Y2), nil
		}, nil
	case queries.Q2a:
		return func(i int, f *video.Frame) (*video.Frame, error) {
			return f.Grayscale(), nil
		}, nil
	case queries.Q2c:
		env := in.Env
		tile := env.City.TileOf(env.Camera)
		want := make(map[string]bool, len(p.Classes))
		for _, c := range p.Classes {
			want[c.String()] = true
		}
		fps := in.Encoded.Config.FPS
		return func(i int, f *video.Frame) (*video.Frame, error) {
			t := env.FrameTime(i, fps)
			obs := tile.GroundTruth(env.Camera, t, f.W, f.H)
			dets := env.Detector.Detect(f, env.Camera.ID, obs)
			// The box video of the offline reference (RunQ2c): class
			// color inside each requested-class box, ω elsewhere.
			bf := video.NewFrame(f.W, f.H)
			bf.Index = i
			for _, d := range dets {
				if !want[d.Class] {
					continue
				}
				cls := vcity.ClassVehicle
				if d.Class == vcity.ClassPedestrian.String() {
					cls = vcity.ClassPedestrian
				}
				render.FillRect(bf, d.Box, queries.ClassColor(cls))
			}
			return bf, nil
		}, nil
	case queries.Q5:
		return func(i int, f *video.Frame) (*video.Frame, error) {
			nw, nh := f.W/p.Alpha, f.H/p.Beta
			if nw < 1 {
				nw = 1
			}
			if nh < 1 {
				nh = 1
			}
			return f.Downsample(nw, nh), nil
		}, nil
	}
	return nil, fmt.Errorf("vcd: query %s: %w", q, ErrOnlineUnsupported)
}

// ErrOnlineUnsupported marks queries outside the online-capable subset,
// so drivers can distinguish "not a streaming query" from a run failure.
var ErrOnlineUnsupported = errors.New("no online kernel")

// isIntra reports whether an access unit is a keyframe (the bitstream's
// first bit is the frame-type flag, 0 = intra) — the resync points the
// online decoder recovers at.
func isIntra(au []byte) bool { return len(au) > 0 && au[0]&0x80 == 0 }

// onlineSession is one live transport hooked to its producer goroutine.
type onlineSession struct {
	// next returns the next access unit and the source frame index it
	// carries (-1 when the transport has no indexing, i.e. the pipe).
	next func() ([]byte, int, error)
	// shutdown tears the transport down and joins the producer
	// goroutine, returning its terminal error; idempotent, safe on
	// every exit path.
	shutdown func() error
}

// RunOnline executes one query instance against a live-paced stream of
// the instance's first input, delivered over the chosen transport, and
// reports the achieved frame rate. clock may be nil for wall-clock
// pacing or a fake clock for tests.
func RunOnline(inst *vdbms.QueryInstance, transport OnlineTransport, clock stream.Clock, sink vdbms.Sink) (*OnlineReport, error) {
	return RunOnlineOpts(context.Background(), inst, OnlineOptions{Transport: transport, Clock: clock, Sink: sink})
}

// RunOnlineOpts is RunOnline with a lifecycle context and the full
// option set: fault injection, per-stream deadline, and retry policy.
// Every exit path — success, decode or kernel failure, cancellation,
// deadline — unwinds the producer goroutine before returning.
func RunOnlineOpts(ctx context.Context, inst *vdbms.QueryInstance, opt OnlineOptions) (*OnlineReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	clock := opt.Clock
	if clock == nil {
		clock = stream.RealClock{}
	}
	var cancel context.CancelFunc
	if opt.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, opt.Timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	in := inst.Inputs[0]
	kernel, err := onlineKernel(inst.Query, inst.Params, in)
	if err != nil {
		return nil, err
	}
	cfg := in.Encoded.Config

	rep := &OnlineReport{Query: inst.Query, Transport: opt.Transport}
	sp := metrics.StartSpan(metrics.StageOnline)
	defer func() {
		sp.Frames(rep.Frames)
		sp.End()
		recordOnline(rep)
	}()

	// The session clock starts before the producer does: on a fake
	// clock the producer may pace the whole stream ahead of the first
	// consumer read, and that simulated time is part of the run.
	start := clock.Now()
	var sess *onlineSession
	switch opt.Transport {
	case TransportPipe:
		sess = startPipeSession(ctx, cancel, in, opt.Clock, opt.Faults)
	case TransportRTP:
		sess, err = startRTPSession(ctx, cancel, in, clock, opt, rep)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("vcd: unknown transport %d", opt.Transport)
	}
	defer sess.shutdown()

	dec, err := newOnlineDecoder(cfg)
	if err != nil {
		return nil, err
	}
	faulty := opt.Faults.Active()
	out := video.NewVideo(cfg.FPS)
	expect := 0     // next source frame index expected from the stream
	resync := false // discard inter frames until the next keyframe
	for {
		au, fi, err := sess.next()
		if err == io.EOF {
			if perr := sess.shutdown(); perr != nil && perr != io.ErrClosedPipe {
				return nil, perr
			}
			break
		}
		var gap *stream.StreamGapError
		if errors.As(err, &gap) {
			// Packets lost in transit: the receiver already skipped to
			// the next access-unit boundary; recover at a keyframe. The
			// frames the gap cost are counted when the next unit's
			// index arrives.
			rep.Gaps++
			rep.Degraded = true
			resync = true
			continue
		}
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			// Join the producer so the server-side root cause (a write
			// failure, an injected cut) isn't lost behind the receiver
			// symptom.
			if perr := sess.shutdown(); perr != nil && perr != io.ErrClosedPipe && !errors.Is(perr, context.Canceled) {
				return nil, fmt.Errorf("vcd: online receiver: %w (sender: %v)", err, perr)
			}
			return nil, err
		}
		if fi < 0 {
			fi = expect
		}
		if fi < expect {
			// Stale delivery behind a reorder fault; its indices were
			// accounted when the stream jumped ahead. Unusable either
			// way — the reference state has moved past it.
			rep.Degraded = true
			resync = true
			continue
		}
		if fi > expect {
			rep.FramesDropped += fi - expect
			rep.Degraded = true
			resync = true
		}
		expect = fi + 1
		if resync {
			if !isIntra(au) {
				// An inter frame without its reference chain is
				// undecodable; keep counting it as dropped until the
				// next intra frame restores a clean state.
				rep.FramesDropped++
				continue
			}
			rep.Resyncs++
			resync = false
		}
		f, err := dec.Decode(au)
		if err != nil {
			if !faulty {
				return nil, err
			}
			// Corrupted in transit: skip the frame and resynchronize at
			// the next intra frame.
			rep.FramesDropped++
			rep.Degraded = true
			resync = true
			continue
		}
		f.Index = fi
		g, err := kernel(fi, f)
		if err != nil {
			return nil, err
		}
		if g != nil {
			out.Append(g)
		}
		rep.Frames++
	}
	// Tail loss: frames that never arrived before the clean close (a
	// drop of the final packets produces no observable gap).
	if total := len(in.Encoded.Frames); expect < total {
		rep.FramesDropped += total - expect
		rep.Degraded = true
	}
	rep.Elapsed = clock.Now().Sub(start)
	if rep.Elapsed > 0 {
		rep.FPS = float64(rep.Frames) / rep.Elapsed.Seconds()
	}
	if opt.Sink != nil {
		if err := opt.Sink.Emit("out", out); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// startPipeSession wires a PumpVideo producer to a pipe and returns the
// session. pacing keeps the historical contract: a nil caller clock
// paces on the wall clock inside PumpVideo.
func startPipeSession(ctx context.Context, cancel context.CancelFunc, in *vdbms.Input, pacing stream.Clock, plan *stream.FaultPlan) *onlineSession {
	if pacing == nil {
		pacing = stream.RealClock{}
	}
	p := stream.NewPipe(4)
	pumpErr := make(chan error, 1)
	go func() { pumpErr <- stream.PumpVideo(ctx, p, in.Encoded, pacing, plan) }()
	var once sync.Once
	var perr error
	return &onlineSession{
		next: func() ([]byte, int, error) {
			f, err := p.NextCtx(ctx)
			if err != nil {
				return nil, -1, err
			}
			return f.Data, -1, nil
		},
		shutdown: func() error {
			once.Do(func() {
				p.CloseRead()
				cancel()
				perr = <-pumpErr
			})
			return perr
		},
	}
}

// startRTPSession serves the input over loopback RTP and dials it with
// bounded retry, recording retries on the report.
func startRTPSession(ctx context.Context, cancel context.CancelFunc, in *vdbms.Input, clock stream.Clock, opt OnlineOptions, rep *OnlineReport) (*onlineSession, error) {
	pacing := opt.Clock
	if pacing == nil {
		pacing = stream.RealClock{}
	}
	addr, errc, err := stream.ServeRTP(ctx, in.Encoded, pacing, opt.Faults)
	if err != nil {
		return nil, err
	}
	var once sync.Once
	var serr error
	join := func() error {
		once.Do(func() {
			cancel()
			serr = <-errc
		})
		return serr
	}
	recv, retries, err := dialRTP(ctx, clock, addr, opt.Faults, opt.Retry)
	rep.Retries = retries
	if retries > 0 {
		rep.Degraded = true
	}
	if err != nil {
		join()
		return nil, err
	}
	fps := in.Encoded.Config.FPS
	return &onlineSession{
		next: func() ([]byte, int, error) {
			au, err := recv.NextAccessUnit()
			if err != nil {
				return nil, -1, err
			}
			return au, stream.FrameIndexOf(recv.LastTimestamp(), fps), nil
		},
		shutdown: func() error {
			recv.Close()
			return join()
		},
	}, nil
}

// recordOnline feeds the run's degradation accounting into the global
// telemetry counters (mirrored into -metrics-json and /debug/metrics).
func recordOnline(rep *OnlineReport) {
	oc := metrics.GlobalOnlineCounters()
	oc.Frames.Add(int64(rep.Frames))
	oc.Dropped.Add(int64(rep.FramesDropped))
	oc.Gaps.Add(int64(rep.Gaps))
	oc.Resyncs.Add(int64(rep.Resyncs))
	oc.Retries.Add(int64(rep.Retries))
	if rep.Degraded {
		oc.Degraded.Inc()
	}
}
