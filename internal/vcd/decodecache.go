package vcd

import (
	"sync"

	"repro/internal/metrics"
	"repro/internal/video"
)

// DefaultDecodedCacheBytes is the decoded-input cache budget when the
// caller does not set one.
const DefaultDecodedCacheBytes = 256 << 20

// decodedCache is the driver's shared decoded-input cache: decoded
// frame windows keyed by (input ID, interval, tile set), byte-budgeted
// with LRU eviction and protected by window-granular ref-counted pins.
// A lookup hits when any resident window covers the requested interval
// and its tile mask covers the requested tiles (a full-frame window,
// mask 0, covers every tile set); a miss decodes the keyframe-aligned
// request and coalesces it with every same-mask resident window it
// overlaps into one union entry, so an input's windows never fragment
// into overlapping copies. Fills are single-flight — concurrent
// requests covered by an in-flight window wait for it instead of
// decoding — and every acquire returns a view (fresh frame headers over
// shared plane storage) so consumers never write to each other's
// frames.
type decodedCache struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	tick    int64
	entries map[string][]*decodedEntry
	pins    map[string][]*pinWindow

	counters metrics.CacheCounters
}

// decodedEntry is one resident frame window [lo, hi) of an input. Once
// done is closed, video/err/bytes are immutable: waiters read them
// after <-done without the lock. video holds exactly hi−lo frames in
// stream order (Frame.Index carries absolute indices). mask is the tile
// selection the window was decoded with: 0 means full frames (every
// pixel valid); a non-zero bit t means tile t's region is valid and the
// rest is undefined. A failed fill is never resurrected — a retry
// creates a fresh entry.
type decodedEntry struct {
	name   string
	lo, hi int
	mask   uint64
	done   chan struct{}
	video  *video.Video
	bytes  int64
	err    error
	lru    int64
}

// pinWindow is a ref-counted frame interval referenced by executing
// instances: resident windows overlapping a pinned interval of their
// input are never evicted.
type pinWindow struct {
	lo, hi int
	count  int
}

// globalCacheCounters mirrors each cache's per-run counters into the
// process-wide metrics registry, so live snapshots (the -debug-addr
// listener) and interval telemetry see cache behavior without a handle
// on the current run's cache.
var globalCacheCounters = metrics.GlobalCacheCounters()

func newDecodedCache(budget int64) *decodedCache {
	if budget <= 0 {
		budget = DefaultDecodedCacheBytes
	}
	return &decodedCache{
		budget:  budget,
		entries: make(map[string][]*decodedEntry),
		pins:    make(map[string][]*pinWindow),
	}
}

func (e *decodedEntry) covers(lo, hi int) bool   { return e.lo <= lo && hi <= e.hi }
func (e *decodedEntry) overlaps(lo, hi int) bool { return e.lo < hi && lo < e.hi }

// maskCovers reports whether a resident window decoded with tile mask
// have serves a request for tile mask want. Full-frame windows (mask 0)
// serve everything; a tiled window serves exactly the tile requests
// whose bits it contains — never a full-frame request, whose pixels
// outside the window's tiles are undefined.
func maskCovers(have, want uint64) bool {
	return have == 0 || (want != 0 && want&^have == 0)
}

// filled reports whether the entry's fill completed successfully.
// Callers hold the lock.
func (e *decodedEntry) filled() bool {
	select {
	case <-e.done:
		return e.err == nil
	default:
		return false
	}
}

// failed reports whether the entry's fill completed with an error.
// Callers hold the lock.
func (e *decodedEntry) failed() bool {
	select {
	case <-e.done:
		return e.err != nil
	default:
		return false
	}
}

// acquire returns frames [lo, hi) of input name (lo < hi), decoding at
// most once across concurrent callers per window. mask selects the tile
// set the caller needs (0 = full frames); decode must produce frames
// whose mask-selected regions are valid. align maps the window start to
// its decode seed position — the governing keyframe — so stored windows
// begin on intra frames and the frames-decoded counter is exact; nil
// align is the identity (whole-clip fills). decode is called with the
// aligned window to reconstruct. The returned video is a per-caller
// view of exactly hi−lo frames; its plane storage is shared and must be
// treated as read-only.
func (c *decodedCache) acquire(name string, lo, hi int, mask uint64, align func(int) int, decode func(lo, hi int) (*video.Video, error)) (*video.Video, error) {
	c.counters.FramesRequested.Add(int64(hi - lo))
	globalCacheCounters.FramesRequested.Add(int64(hi - lo))
	c.mu.Lock()
	c.tick++
	if e := c.coveringLocked(name, lo, hi, mask); e != nil {
		// A covering fill finished or is in flight: either way this
		// caller skips a decode.
		e.lru = c.tick
		c.mu.Unlock()
		c.counters.Hits.Inc()
		globalCacheCounters.Hits.Inc()
		<-e.done
		if e.err != nil {
			return nil, e.err
		}
		return viewRange(e.video, lo-e.lo, hi-e.lo), nil
	}
	// Miss: decode the keyframe-aligned request and coalesce it with
	// every same-mask resident window it overlaps into one union entry.
	// Absorbed entries leave the map now — concurrent requests they
	// covered route to the union and wait — and contribute their frames
	// to the union by pointer, so no pixels are copied or re-decoded.
	// Windows with a different tile mask are left alone: their frames
	// carry different valid regions, so pointer-stitching across masks
	// would mix them.
	alo := lo
	if align != nil {
		alo = align(lo)
	}
	ulo, uhi := alo, hi
	var absorbed []*decodedEntry
	kept := c.entries[name][:0]
	for _, e := range c.entries[name] {
		if e.mask == mask && e.filled() && e.overlaps(alo, hi) {
			if e.lo < ulo {
				ulo = e.lo
			}
			if e.hi > uhi {
				uhi = e.hi
			}
			absorbed = append(absorbed, e)
			c.used -= e.bytes
			continue
		}
		kept = append(kept, e)
	}
	e := &decodedEntry{name: name, lo: ulo, hi: uhi, mask: mask, done: make(chan struct{}), lru: c.tick}
	c.entries[name] = append(kept, e)
	c.mu.Unlock()
	c.counters.Misses.Inc()
	globalCacheCounters.Misses.Inc()
	metrics.DecodeInflight(1)

	v, err := decode(alo, hi)
	if err == nil {
		c.counters.FramesDecoded.Add(int64(hi - alo))
		globalCacheCounters.FramesDecoded.Add(int64(hi - alo))
		v = stitchUnion(v, alo, absorbed, ulo, uhi)
	}
	c.mu.Lock()
	e.video, e.err = v, err
	if err == nil {
		e.bytes = videoBytes(v)
		c.used += e.bytes
		c.evictLocked(e)
	} else {
		// Failed fills vanish so a later acquire retries.
		c.removeLocked(e)
	}
	close(e.done)
	metrics.DecodeInflight(-1)
	metrics.CacheResident(c.used)
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return viewRange(v, lo-ulo, hi-ulo), nil
}

// stitchUnion assembles the union window [ulo, uhi) from the freshly
// decoded frames (starting at absolute index alo) and the absorbed
// resident windows, sharing frame storage throughout. Every slot is
// covered: each absorbed window overlaps the fresh one, so the union
// has no interior gaps.
func stitchUnion(fresh *video.Video, alo int, absorbed []*decodedEntry, ulo, uhi int) *video.Video {
	if ulo == alo && uhi == alo+len(fresh.Frames) {
		return fresh
	}
	frames := make([]*video.Frame, uhi-ulo)
	for _, e := range absorbed {
		for i, f := range e.video.Frames {
			frames[e.lo+i-ulo] = f
		}
	}
	for i, f := range fresh.Frames {
		frames[alo+i-ulo] = f
	}
	return &video.Video{FPS: fresh.FPS, Frames: frames}
}

// coveringLocked returns an entry covering [lo, hi) and the requested
// tile mask whose fill succeeded or is still in flight.
func (c *decodedCache) coveringLocked(name string, lo, hi int, mask uint64) *decodedEntry {
	for _, e := range c.entries[name] {
		if e.covers(lo, hi) && maskCovers(e.mask, mask) && !e.failed() {
			return e
		}
	}
	return nil
}

// peek returns a full-frame view of frames [lo, hi) only if a resident
// full-frame window already covers them; it never triggers a fill and
// counts neither hit nor miss (the caller will decode through its own
// path on a cold cache). Tiled windows never serve a peek: their pixels
// outside the decoded tiles are undefined.
func (c *decodedCache) peek(name string, lo, hi int) (*video.Video, bool) {
	c.mu.Lock()
	var e *decodedEntry
	for _, cand := range c.entries[name] {
		if cand.mask == 0 && cand.covers(lo, hi) && cand.filled() {
			e = cand
			break
		}
	}
	if e == nil {
		c.mu.Unlock()
		return nil, false
	}
	c.tick++
	e.lru = c.tick
	c.mu.Unlock()
	c.counters.Hits.Inc()
	globalCacheCounters.Hits.Inc()
	return viewRange(e.video, lo-e.lo, hi-e.lo), true
}

// pin marks frames [lo, hi) of name as referenced by an executing
// instance: resident windows overlapping a pinned interval are never
// evicted, whether or not their fill has happened yet.
func (c *decodedCache) pin(name string, lo, hi int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range c.pins[name] {
		if p.lo == lo && p.hi == hi {
			p.count++
			return
		}
	}
	c.pins[name] = append(c.pins[name], &pinWindow{lo: lo, hi: hi, count: 1})
}

// unpin releases one pin on frames [lo, hi) of name.
func (c *decodedCache) unpin(name string, lo, hi int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	wins := c.pins[name]
	for i, p := range wins {
		if p.lo != lo || p.hi != hi {
			continue
		}
		p.count--
		if p.count <= 0 {
			wins[i] = wins[len(wins)-1]
			wins = wins[:len(wins)-1]
			if len(wins) == 0 {
				delete(c.pins, name)
			} else {
				c.pins[name] = wins
			}
		}
		return
	}
}

// pinnedLocked reports whether any pinned interval of the entry's input
// overlaps its window.
func (c *decodedCache) pinnedLocked(e *decodedEntry) bool {
	for _, p := range c.pins[e.name] {
		if p.lo < e.hi && e.lo < p.hi {
			return true
		}
	}
	return false
}

// evictLocked drops least-recently-used, unpinned, filled windows until
// the cache fits its budget. The just-filled entry keep is exempt so a
// single oversized window still caches (soft budget: when everything
// else is pinned the cache may transiently overflow).
func (c *decodedCache) evictLocked(keep *decodedEntry) {
	for c.used > c.budget {
		var victim *decodedEntry
		for _, list := range c.entries {
			for _, e := range list {
				if e == keep || !e.filled() || c.pinnedLocked(e) {
					continue
				}
				if victim == nil || e.lru < victim.lru {
					victim = e
				}
			}
		}
		if victim == nil {
			return
		}
		c.used -= victim.bytes
		c.removeLocked(victim)
		c.counters.Evictions.Inc()
		globalCacheCounters.Evictions.Inc()
	}
}

// removeLocked detaches an entry from its input's window list.
func (c *decodedCache) removeLocked(victim *decodedEntry) {
	list := c.entries[victim.name]
	for i, e := range list {
		if e == victim {
			list[i] = list[len(list)-1]
			list = list[:len(list)-1]
			break
		}
	}
	if len(list) == 0 {
		delete(c.entries, victim.name)
	} else {
		c.entries[victim.name] = list
	}
}

// stats snapshots the cache counters.
func (c *decodedCache) stats() metrics.CacheStats {
	return c.counters.Snapshot()
}

// viewRange returns a per-consumer view of frames [from, to) of a
// cached video: fresh Frame headers (so index stamping by one consumer
// never races another) over shared, read-only plane storage.
func viewRange(v *video.Video, from, to int) *video.Video {
	out := &video.Video{FPS: v.FPS, Frames: make([]*video.Frame, to-from)}
	for i := from; i < to; i++ {
		g := *v.Frames[i]
		out.Frames[i-from] = &g
	}
	return out
}

// viewOf is a whole-video viewRange.
func viewOf(v *video.Video) *video.Video { return viewRange(v, 0, len(v.Frames)) }

// videoBytes is the cache accounting size of a decoded video.
func videoBytes(v *video.Video) int64 {
	var n int64
	for _, f := range v.Frames {
		n += int64(len(f.Y) + len(f.U) + len(f.V))
	}
	return n
}
