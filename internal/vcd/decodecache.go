package vcd

import (
	"sync"

	"repro/internal/metrics"
	"repro/internal/video"
)

// DefaultDecodedCacheBytes is the decoded-input cache budget when the
// caller does not set one.
const DefaultDecodedCacheBytes = 256 << 20

// decodedCache is the driver's shared decoded-input cache: decoded
// videos keyed by input ID, ref-counted (pins) and byte-budgeted with
// LRU eviction. Fills are single-flight — when concurrent instances
// need the same input, exactly one decodes it and the rest wait — and
// every acquire returns a view (fresh frame headers over shared plane
// storage) so consumers never write to each other's frames.
type decodedCache struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	tick    int64
	entries map[string]*decodedEntry

	counters metrics.CacheCounters
}

// decodedEntry is one cache slot. A nil done channel means no fill has
// started (a pin placeholder). Once done is closed, video/err/bytes are
// immutable: waiters read them after <-done without the lock. A failed
// fill is never resurrected — a retry replaces the entry.
type decodedEntry struct {
	name  string
	done  chan struct{}
	video *video.Video
	bytes int64
	err   error
	pins  int
	lru   int64
}

func newDecodedCache(budget int64) *decodedCache {
	if budget <= 0 {
		budget = DefaultDecodedCacheBytes
	}
	return &decodedCache{budget: budget, entries: make(map[string]*decodedEntry)}
}

// filled reports whether the entry's fill completed successfully.
// Callers hold the lock.
func (e *decodedEntry) filled() bool {
	if e.done == nil {
		return false
	}
	select {
	case <-e.done:
		return e.err == nil
	default:
		return false
	}
}

// failed reports whether the entry's fill completed with an error.
// Callers hold the lock.
func (e *decodedEntry) failed() bool {
	if e.done == nil {
		return false
	}
	select {
	case <-e.done:
		return e.err != nil
	default:
		return false
	}
}

// acquire returns the decoded video for name, filling it via decode
// exactly once across concurrent callers. The returned video is a
// per-caller view; its plane storage is shared and must be treated as
// read-only.
func (c *decodedCache) acquire(name string, decode func() (*video.Video, error)) (*video.Video, error) {
	c.mu.Lock()
	c.tick++
	e, ok := c.entries[name]
	if ok && e.done != nil && !e.failed() {
		// A fill finished or is in flight: either way this caller skips
		// a decode.
		e.lru = c.tick
		done := e.done
		c.mu.Unlock()
		c.counters.Hits.Inc()
		<-done
		if e.err != nil {
			return nil, e.err
		}
		return viewOf(e.video), nil
	}
	switch {
	case !ok:
		e = &decodedEntry{name: name}
		c.entries[name] = e
	case e.done != nil:
		// Previous fill failed: retry on a fresh slot, carrying pins.
		e = &decodedEntry{name: name, pins: e.pins}
		c.entries[name] = e
	}
	e.done = make(chan struct{})
	e.lru = c.tick
	c.mu.Unlock()
	c.counters.Misses.Inc()

	v, err := decode()
	c.mu.Lock()
	e.video, e.err = v, err
	if err == nil {
		e.bytes = videoBytes(v)
		c.used += e.bytes
		c.evictLocked(e)
	} else if e.pins == 0 {
		// Failed, unpinned fills vanish so a later acquire retries.
		delete(c.entries, name)
	}
	close(e.done)
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return viewOf(v), nil
}

// peek returns a view of the decoded video only if it is already
// resident; it never triggers a fill and counts neither hit nor miss
// (the caller will decode through its own path on a cold cache).
func (c *decodedCache) peek(name string) (*video.Video, bool) {
	c.mu.Lock()
	e, ok := c.entries[name]
	if !ok || !e.filled() {
		c.mu.Unlock()
		return nil, false
	}
	c.tick++
	e.lru = c.tick
	v := e.video
	c.mu.Unlock()
	c.counters.Hits.Inc()
	return viewOf(v), true
}

// pin marks name as referenced by an executing instance: pinned entries
// are never evicted, whether or not their fill has happened yet.
func (c *decodedCache) pin(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[name]
	if !ok {
		e = &decodedEntry{name: name}
		c.entries[name] = e
	}
	e.pins++
}

// unpin releases one pin. Unpinned slots that hold no decoded video
// (placeholders, failed fills) are dropped; filled entries stay
// resident for reuse until evicted by budget.
func (c *decodedCache) unpin(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[name]
	if !ok {
		return
	}
	if e.pins > 0 {
		e.pins--
	}
	if e.pins == 0 && (e.done == nil || e.failed()) {
		delete(c.entries, name)
	}
}

// evictLocked drops least-recently-used, unpinned, filled entries until
// the cache fits its budget. The just-filled entry keep is exempt so a
// single oversized input still caches (soft budget: when everything
// else is pinned the cache may transiently overflow).
func (c *decodedCache) evictLocked(keep *decodedEntry) {
	for c.used > c.budget {
		var victim *decodedEntry
		for _, e := range c.entries {
			if e == keep || e.pins > 0 || !e.filled() {
				continue
			}
			if victim == nil || e.lru < victim.lru {
				victim = e
			}
		}
		if victim == nil {
			return
		}
		c.used -= victim.bytes
		delete(c.entries, victim.name)
		c.counters.Evictions.Inc()
	}
}

// stats snapshots the cache counters.
func (c *decodedCache) stats() metrics.CacheStats {
	return c.counters.Snapshot()
}

// viewOf returns a per-consumer view of a cached video: fresh Frame
// headers (so index stamping by one consumer never races another) over
// shared, read-only plane storage.
func viewOf(v *video.Video) *video.Video {
	out := &video.Video{FPS: v.FPS, Frames: make([]*video.Frame, len(v.Frames))}
	for i, f := range v.Frames {
		g := *f
		out.Frames[i] = &g
	}
	return out
}

// videoBytes is the cache accounting size of a decoded video.
func videoBytes(v *video.Video) int64 {
	var n int64
	for _, f := range v.Frames {
		n += int64(len(f.Y) + len(f.U) + len(f.V))
	}
	return n
}
