package vcd

import (
	"testing"
	"time"

	"repro/internal/queries"
	"repro/internal/stream"
	"repro/internal/vdbms"
	"repro/internal/video"
)

func onlineInstance(t *testing.T, ds *Dataset, q queries.QueryID, p queries.Params) *vdbms.QueryInstance {
	t.Helper()
	in, err := ds.Input(ds.TrafficCameraIDs()[0])
	if err != nil {
		t.Fatal(err)
	}
	return &vdbms.QueryInstance{Query: q, Params: p, Inputs: []*vdbms.Input{in}}
}

func TestRunOnlinePipe(t *testing.T) {
	ds := testDataset(t)
	inst := onlineInstance(t, ds, queries.Q2a, queries.Params{})
	var got *video.Video
	sink := vdbms.SinkFunc(func(key string, v *video.Video) error {
		got = v
		return nil
	})
	// A fake clock removes wall-clock pacing from the test.
	clock := stream.NewFakeClock(time.Unix(0, 0))
	rep, err := RunOnline(inst, TransportPipe, clock, sink)
	if err != nil {
		t.Fatal(err)
	}
	want := len(inst.Inputs[0].Encoded.Frames)
	if rep.Frames != want {
		t.Errorf("processed %d frames, want %d", rep.Frames, want)
	}
	if got == nil || len(got.Frames) != want {
		t.Error("sink did not receive the processed stream")
	}
	if rep.FPS <= 0 {
		t.Error("no throughput reported")
	}
	// Grayscale output: chroma neutral.
	for i := range got.Frames[0].U {
		if got.Frames[0].U[i] != 128 {
			t.Fatal("online Q2(a) did not grayscale")
		}
	}
}

func TestRunOnlineRTP(t *testing.T) {
	ds := testDataset(t)
	inst := onlineInstance(t, ds, queries.Q5, queries.Params{Alpha: 2, Beta: 2})
	var got *video.Video
	sink := vdbms.SinkFunc(func(key string, v *video.Video) error {
		got = v
		return nil
	})
	rep, err := RunOnline(inst, TransportRTP, nil, sink)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames == 0 {
		t.Fatal("no frames over RTP")
	}
	w, h := got.Resolution()
	if w != 64 || h != 48 {
		t.Errorf("online Q5 output %dx%d, want 64x48", w, h)
	}
}

func TestRunOnlineThrottledPacing(t *testing.T) {
	ds := testDataset(t)
	inst := onlineInstance(t, ds, queries.Q2a, queries.Params{})
	clock := stream.NewFakeClock(time.Unix(0, 0))
	if _, err := RunOnline(inst, TransportPipe, clock, nil); err != nil {
		t.Fatal(err)
	}
	// The producer paced frames at the capture rate: the fake clock
	// must have been advanced by roughly duration × fps intervals.
	var total time.Duration
	for _, d := range clock.Slept {
		total += d
	}
	frames := len(inst.Inputs[0].Encoded.Frames)
	wantMin := time.Duration(frames-2) * time.Second / 15
	if total < wantMin {
		t.Errorf("producer slept %v, want at least %v — stream was not throttled", total, wantMin)
	}
}

func TestRunOnlineUnsupportedQuery(t *testing.T) {
	ds := testDataset(t)
	inst := onlineInstance(t, ds, queries.Q9, queries.Params{})
	if _, err := RunOnline(inst, TransportPipe, nil, nil); err == nil {
		t.Error("Q9 has no online kernel and should fail")
	}
}
