// Package vcd implements the Visual City Driver: the benchmark harness
// that stages input videos for a VDBMS, submits query batches (4·L
// instances per query, parameters drawn uniformly at random from the
// Table 3 domains), measures execution, and validates results by frame
// comparison (PSNR ≥ 40 dB against the reference implementation) or
// semantic comparison (against the simulation's scene geometry).
package vcd

import (
	"fmt"

	"repro/internal/queries"
	"repro/internal/vcity"
	"repro/internal/vtt"
)

// ParamSampler draws query-instance parameters uniformly from the
// domains of Table 3 for a given dataset configuration. The sampler is
// seeded independently of the dataset so batches are reproducible.
type ParamSampler struct {
	rng *vcity.RNG
	rx  int
	ry  int
	dur float64
	// MaxUpsamplePixels guards Q4 parameter draws at model scale: α, β
	// pairs whose output frame would exceed this pixel count are
	// redrawn. Zero disables the guard (full paper domain).
	MaxUpsamplePixels int
}

// NewParamSampler returns a sampler for inputs of resolution (rx, ry)
// and the given duration (seconds).
func NewParamSampler(seed uint64, rx, ry int, duration float64) *ParamSampler {
	return &ParamSampler{rng: vcity.NewRNG(seed ^ 0x5a5a1234), rx: rx, ry: ry, dur: duration}
}

// Sample draws one parameter set for the query. ctx supplies the
// query-specific inputs needed for sampling (e.g. the caption document
// for Q6(b), the tile's plates for Q8).
func (s *ParamSampler) Sample(q queries.QueryID, ctx SampleContext) (queries.Params, error) {
	var p queries.Params
	switch q {
	case queries.Q1:
		// Rectangles below 16 px per side are redrawn: the container
		// codec needs a minimally meaningful frame, and sub-16px crops
		// are degenerate for every system under test.
		for {
			x1, x2 := s.orderedPair(s.rx)
			y1, y2 := s.orderedPair(s.ry)
			if x2-x1 >= 16 && y2-y1 >= 16 {
				p.X1, p.X2, p.Y1, p.Y2 = x1, x2, y1, y2
				break
			}
		}
		for {
			t1 := s.rng.Range(0, s.dur)
			t2 := s.rng.Range(0, s.dur)
			if t2 < t1 {
				t1, t2 = t2, t1
			}
			if t2-t1 >= 0.1 {
				p.T1, p.T2 = t1, t2
				break
			}
		}
	case queries.Q2b:
		p.D = 3 + s.rng.Intn(18) // [3, 20]
	case queries.Q2c:
		p.Algorithm = "yolov2"
		p.Classes = []vcity.ObjectClass{s.randomClass()}
	case queries.Q2d:
		p.M = 2 + s.rng.Intn(59) // [2, 60]
		p.Epsilon = s.rng.Range(0.02, 0.5)
	case queries.Q3:
		p.DX = s.rx / (1 << (1 + s.rng.Intn(3))) // Rx / 2^n, n ∈ [1..3]
		p.DY = s.ry / (1 << (1 + s.rng.Intn(3)))
		if p.DX < 16 {
			p.DX = 16
		}
		if p.DY < 16 {
			p.DY = 16
		}
		n := (s.rx/p.DX + 1) * (s.ry/p.DY + 1)
		p.Bitrates = make([]int, n)
		for i := range p.Bitrates {
			p.Bitrates[i] = 1 << (16 + s.rng.Intn(7)) // 2^n, n ∈ [16..22] bits/s
		}
	case queries.Q4:
		for {
			p.Alpha = 1 << (1 + s.rng.Intn(5)) // 2^n, n ∈ [1..5]
			p.Beta = 1 << (1 + s.rng.Intn(5))
			if s.MaxUpsamplePixels == 0 ||
				s.rx*p.Alpha*s.ry*p.Beta <= s.MaxUpsamplePixels {
				break
			}
		}
	case queries.Q5:
		p.Alpha = 1 << (1 + s.rng.Intn(5))
		p.Beta = 1 << (1 + s.rng.Intn(5))
	case queries.Q6a:
		p.Algorithm = "yolov2"
		p.Classes = []vcity.ObjectClass{vcity.ClassVehicle, vcity.ClassPedestrian}
	case queries.Q6b:
		if ctx.Captions == nil {
			return p, fmt.Errorf("vcd: Q6(b) input has no caption track")
		}
		p.Captions = ctx.Captions
	case queries.Q7:
		p.Algorithm = "yolov2"
		p.Classes = []vcity.ObjectClass{vcity.ClassVehicle, vcity.ClassPedestrian}
		p.M = 2 + s.rng.Intn(14)
		p.Epsilon = s.rng.Range(0.05, 0.3)
	case queries.Q8:
		if len(ctx.Plates) == 0 {
			return p, fmt.Errorf("vcd: Q8 requires candidate plates")
		}
		p.Plate = ctx.Plates[s.rng.Intn(len(ctx.Plates))]
	case queries.Q9:
		// Q9 has no free parameters; the panoramic group is the input.
	case queries.Q10:
		p.TileBitrates = make([]int, 9)
		bh := 1 << (19 + s.rng.Intn(4)) // high-quality bitrate
		bl := bh >> 3                   // low-quality bitrate
		nHigh := 1 + s.rng.Intn(4)
		for i := range p.TileBitrates {
			if i < nHigh {
				p.TileBitrates[i] = bh
			} else {
				p.TileBitrates[i] = bl
			}
		}
		// Client resolutions mimic common headset panels.
		res := [][2]int{{ctx.InputW / 2, ctx.InputH / 2}, {ctx.InputW * 3 / 4, ctx.InputH * 3 / 4}}
		r := res[s.rng.Intn(len(res))]
		p.ClientW, p.ClientH = maxInt(r[0], 16), maxInt(r[1], 16)
	}
	return p, nil
}

// SampleContext carries the per-instance inputs parameter sampling
// depends on.
type SampleContext struct {
	Captions *vtt.Document
	Plates   []string
	InputW   int
	InputH   int
}

// orderedPair draws 0 ≤ a < b ≤ n.
func (s *ParamSampler) orderedPair(n int) (int, int) {
	a := s.rng.Intn(n)
	b := s.rng.Intn(n + 1)
	if b < a {
		a, b = b, a
	}
	if a == b {
		b = a + 1
	}
	return a, b
}

func (s *ParamSampler) randomClass() vcity.ObjectClass {
	if s.rng.Bool(0.5) {
		return vcity.ClassPedestrian
	}
	return vcity.ClassVehicle
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
