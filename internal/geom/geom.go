// Package geom provides the small geometric vocabulary shared by the
// Visual Road simulator, renderer, and validators: 2D/3D vectors,
// axis-aligned rectangles, and the box-overlap metrics (IoU / Jaccard
// distance) used for semantic validation of detection queries.
package geom

import "math"

// Vec2 is a point or direction in the city's ground plane (meters).
type Vec2 struct {
	X, Y float64
}

// Add returns v + o.
func (v Vec2) Add(o Vec2) Vec2 { return Vec2{v.X + o.X, v.Y + o.Y} }

// Sub returns v - o.
func (v Vec2) Sub(o Vec2) Vec2 { return Vec2{v.X - o.X, v.Y - o.Y} }

// Scale returns v scaled by s.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Dot returns the dot product of v and o.
func (v Vec2) Dot(o Vec2) float64 { return v.X*o.X + v.Y*o.Y }

// Len returns the Euclidean length of v.
func (v Vec2) Len() float64 { return math.Hypot(v.X, v.Y) }

// Norm returns v scaled to unit length; the zero vector is returned as-is.
func (v Vec2) Norm() Vec2 {
	l := v.Len()
	if l == 0 {
		return v
	}
	return v.Scale(1 / l)
}

// Rot returns v rotated by theta radians counterclockwise.
func (v Vec2) Rot(theta float64) Vec2 {
	s, c := math.Sincos(theta)
	return Vec2{v.X*c - v.Y*s, v.X*s + v.Y*c}
}

// Vec3 is a point or direction in city space: X east, Y north, Z up (meters).
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + o.
func (v Vec3) Add(o Vec3) Vec3 { return Vec3{v.X + o.X, v.Y + o.Y, v.Z + o.Z} }

// Sub returns v - o.
func (v Vec3) Sub(o Vec3) Vec3 { return Vec3{v.X - o.X, v.Y - o.Y, v.Z - o.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product of v and o.
func (v Vec3) Dot(o Vec3) float64 { return v.X*o.X + v.Y*o.Y + v.Z*o.Z }

// Cross returns the cross product v × o.
func (v Vec3) Cross(o Vec3) Vec3 {
	return Vec3{
		v.Y*o.Z - v.Z*o.Y,
		v.Z*o.X - v.X*o.Z,
		v.X*o.Y - v.Y*o.X,
	}
}

// Len returns the Euclidean length of v.
func (v Vec3) Len() float64 { return math.Sqrt(v.Dot(v)) }

// Norm returns v scaled to unit length; the zero vector is returned as-is.
func (v Vec3) Norm() Vec3 {
	l := v.Len()
	if l == 0 {
		return v
	}
	return v.Scale(1 / l)
}

// Rect is an axis-aligned rectangle in pixel coordinates. Min is the
// upper-left corner and Max the lower-right; a Rect is well formed when
// Min.X <= Max.X and Min.Y <= Max.Y. Coordinates are continuous: the
// rectangle covers [Min.X, Max.X) × [Min.Y, Max.Y).
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// RectFromCorners returns the well-formed rectangle spanning the two points.
func RectFromCorners(x1, y1, x2, y2 float64) Rect {
	if x2 < x1 {
		x1, x2 = x2, x1
	}
	if y2 < y1 {
		y1, y2 = y2, y1
	}
	return Rect{x1, y1, x2, y2}
}

// W returns the rectangle's width.
func (r Rect) W() float64 { return r.MaxX - r.MinX }

// H returns the rectangle's height.
func (r Rect) H() float64 { return r.MaxY - r.MinY }

// Area returns the rectangle's area; degenerate rectangles have area 0.
func (r Rect) Area() float64 {
	if r.Empty() {
		return 0
	}
	return r.W() * r.H()
}

// Empty reports whether the rectangle covers no area.
func (r Rect) Empty() bool { return r.MaxX <= r.MinX || r.MaxY <= r.MinY }

// Intersect returns the overlapping region of r and o, which may be empty.
func (r Rect) Intersect(o Rect) Rect {
	i := Rect{
		math.Max(r.MinX, o.MinX),
		math.Max(r.MinY, o.MinY),
		math.Min(r.MaxX, o.MaxX),
		math.Min(r.MaxY, o.MaxY),
	}
	if i.Empty() {
		return Rect{}
	}
	return i
}

// Union returns the smallest rectangle containing both r and o.
func (r Rect) Union(o Rect) Rect {
	if r.Empty() {
		return o
	}
	if o.Empty() {
		return r
	}
	return Rect{
		math.Min(r.MinX, o.MinX),
		math.Min(r.MinY, o.MinY),
		math.Max(r.MaxX, o.MaxX),
		math.Max(r.MaxY, o.MaxY),
	}
}

// Contains reports whether the point (x, y) lies inside r.
func (r Rect) Contains(x, y float64) bool {
	return x >= r.MinX && x < r.MaxX && y >= r.MinY && y < r.MaxY
}

// Clip constrains r to the bounds rectangle.
func (r Rect) Clip(bounds Rect) Rect { return r.Intersect(bounds) }

// IoU returns the intersection-over-union of two rectangles in [0, 1].
// Two empty rectangles have IoU 0.
func IoU(a, b Rect) float64 {
	inter := a.Intersect(b).Area()
	if inter == 0 {
		return 0
	}
	union := a.Area() + b.Area() - inter
	return inter / union
}

// JaccardDistance returns 1 - IoU(a, b), the metric the Visual Road VCD
// uses for semantic validation of bounding boxes (threshold ε = 0.5,
// matching the PASCAL VOC convention referenced by the paper).
func JaccardDistance(a, b Rect) float64 { return 1 - IoU(a, b) }

// Deg converts degrees to radians.
func Deg(d float64) float64 { return d * math.Pi / 180 }

// WrapAngle normalizes an angle to (-π, π].
func WrapAngle(a float64) float64 {
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}

// Clamp bounds v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ClampInt bounds v to [lo, hi].
func ClampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
