package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestVec2Basics(t *testing.T) {
	a := Vec2{3, 4}
	if got := a.Len(); !almostEq(got, 5) {
		t.Errorf("Len() = %v, want 5", got)
	}
	if got := a.Norm().Len(); !almostEq(got, 1) {
		t.Errorf("Norm().Len() = %v, want 1", got)
	}
	if got := (Vec2{}).Norm(); got != (Vec2{}) {
		t.Errorf("zero vector Norm() = %v, want zero", got)
	}
	if got := a.Add(Vec2{1, 2}); got != (Vec2{4, 6}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(Vec2{1, 2}); got != (Vec2{2, 2}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Dot(Vec2{2, -1}); !almostEq(got, 2) {
		t.Errorf("Dot = %v, want 2", got)
	}
}

func TestVec2RotQuarterTurn(t *testing.T) {
	v := Vec2{1, 0}.Rot(math.Pi / 2)
	if !almostEq(v.X, 0) || !almostEq(v.Y, 1) {
		t.Errorf("Rot(π/2) = %v, want (0,1)", v)
	}
}

func TestVec2RotPreservesLength(t *testing.T) {
	f := func(x, y, theta float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(theta) ||
			math.IsInf(x, 0) || math.IsInf(y, 0) || math.IsInf(theta, 0) {
			return true
		}
		x = math.Mod(x, 1e6)
		y = math.Mod(y, 1e6)
		theta = math.Mod(theta, 2*math.Pi)
		v := Vec2{x, y}
		return math.Abs(v.Rot(theta).Len()-v.Len()) < 1e-6*(1+v.Len())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVec3CrossOrthogonal(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{-2, 1, 0.5}
	c := a.Cross(b)
	if !almostEq(c.Dot(a), 0) || !almostEq(c.Dot(b), 0) {
		t.Errorf("cross product not orthogonal: %v", c)
	}
}

func TestVec3NormZero(t *testing.T) {
	if got := (Vec3{}).Norm(); got != (Vec3{}) {
		t.Errorf("zero Norm() = %v", got)
	}
}

func TestRectFromCornersNormalizes(t *testing.T) {
	r := RectFromCorners(10, 20, 2, 4)
	want := Rect{2, 4, 10, 20}
	if r != want {
		t.Errorf("RectFromCorners = %v, want %v", r, want)
	}
}

func TestRectAreaAndEmpty(t *testing.T) {
	if a := (Rect{0, 0, 4, 5}).Area(); !almostEq(a, 20) {
		t.Errorf("Area = %v, want 20", a)
	}
	if !(Rect{5, 5, 5, 9}).Empty() {
		t.Error("zero-width rect should be empty")
	}
	if a := (Rect{5, 5, 4, 9}).Area(); a != 0 {
		t.Errorf("inverted rect Area = %v, want 0", a)
	}
}

func TestRectIntersect(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{5, 5, 15, 15}
	got := a.Intersect(b)
	want := Rect{5, 5, 10, 10}
	if got != want {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if !a.Intersect(Rect{20, 20, 30, 30}).Empty() {
		t.Error("disjoint rects should intersect to empty")
	}
}

func TestRectUnion(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	b := Rect{5, 5, 7, 8}
	got := a.Union(b)
	want := Rect{0, 0, 7, 8}
	if got != want {
		t.Errorf("Union = %v, want %v", got, want)
	}
	if got := (Rect{}).Union(b); got != b {
		t.Errorf("empty Union b = %v, want %v", got, b)
	}
	if got := a.Union(Rect{}); got != a {
		t.Errorf("a Union empty = %v, want %v", got, a)
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	if !r.Contains(0, 0) {
		t.Error("Min corner should be contained")
	}
	if r.Contains(10, 5) {
		t.Error("Max edge should be excluded")
	}
}

func TestIoUIdentical(t *testing.T) {
	r := Rect{1, 2, 5, 9}
	if got := IoU(r, r); !almostEq(got, 1) {
		t.Errorf("IoU(r, r) = %v, want 1", got)
	}
}

func TestIoUDisjoint(t *testing.T) {
	if got := IoU(Rect{0, 0, 1, 1}, Rect{2, 2, 3, 3}); got != 0 {
		t.Errorf("IoU disjoint = %v, want 0", got)
	}
}

func TestIoUHalfOverlap(t *testing.T) {
	a := Rect{0, 0, 2, 1}
	b := Rect{1, 0, 3, 1}
	// Intersection 1, union 3.
	if got := IoU(a, b); !almostEq(got, 1.0/3) {
		t.Errorf("IoU = %v, want 1/3", got)
	}
}

func TestIoUProperties(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh float64) bool {
		norm := func(v float64) float64 { return math.Mod(math.Abs(v), 100) }
		a := Rect{norm(ax), norm(ay), norm(ax) + norm(aw) + 0.1, norm(ay) + norm(ah) + 0.1}
		b := Rect{norm(bx), norm(by), norm(bx) + norm(bw) + 0.1, norm(by) + norm(bh) + 0.1}
		iou := IoU(a, b)
		// Symmetric, bounded, consistent with Jaccard distance.
		return iou >= 0 && iou <= 1 &&
			almostEq(iou, IoU(b, a)) &&
			almostEq(JaccardDistance(a, b), 1-iou)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWrapAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
	}
	for _, c := range cases {
		if got := WrapAngle(c.in); !almostEq(got, c.want) {
			t.Errorf("WrapAngle(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 3); got != 3 {
		t.Errorf("Clamp(5,0,3) = %v", got)
	}
	if got := Clamp(-1, 0, 3); got != 0 {
		t.Errorf("Clamp(-1,0,3) = %v", got)
	}
	if got := ClampInt(7, 2, 4); got != 4 {
		t.Errorf("ClampInt = %v", got)
	}
	if got := ClampInt(1, 2, 4); got != 2 {
		t.Errorf("ClampInt = %v", got)
	}
}

func TestDeg(t *testing.T) {
	if got := Deg(180); !almostEq(got, math.Pi) {
		t.Errorf("Deg(180) = %v", got)
	}
}
