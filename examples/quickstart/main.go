// Quickstart: generate a small Visual Road dataset, benchmark two
// queries on a bundled engine, and print the validated report — the
// minimal end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	visualroad "repro"
)

func main() {
	// 1. Generate a tiny city: 1 tile, model-scale resolution, 2 s of
	// video per camera. The same hyperparameters always produce the
	// same dataset — share (L, R, t, seed) to share the benchmark.
	store := visualroad.NewMemoryStore()
	gen, err := visualroad.Generate(visualroad.Hyperparams{
		Scale: 1, Width: 240, Height: 136, Duration: 2, FPS: 15, Seed: 42,
	}, visualroad.GenerateOptions{Captions: true}, store)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d videos in %s\n", len(gen.Manifest.Videos), gen.Elapsed.Round(1e6))

	// 2. Load the dataset for benchmarking.
	ds, err := visualroad.Load(store)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Run two microbenchmarks on the LightDB-like engine with
	// validation: Q1 (spatio-temporal selection) and Q2(a) (grayscale).
	report, err := visualroad.Run(ds, visualroad.LightDBLike(), visualroad.RunOptions{
		Queries:  visualroad.AllQueries[:2], // Q1, Q2(a)
		Seed:     7,
		Mode:     visualroad.StreamingMode,
		Validate: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Report, as the benchmark requires: runtime, throughput, and
	// validation statistics per query batch.
	for _, qr := range report.Queries {
		fmt.Printf("%-6s batch=%d elapsed=%s fps=%.0f validated=%.0f%% (mean PSNR %.1f dB)\n",
			qr.Query, qr.BatchSize, qr.Elapsed.Round(1e6), qr.FPS(),
			qr.Validation.PassRate()*100, qr.Validation.PSNR.Mean)
	}
}
