// Vr360: the virtual-reality pipeline behind queries Q9 and Q10. It
// stitches the four 120°-FOV sub-cameras of a panoramic camera into an
// equirectangular 360° video (Q9), then applies tile-based streaming
// (Q10): the nine tiles are encoded at high/low bitrates and the video
// downsampled to the client's panel, reporting the bandwidth saved.
package main

import (
	"fmt"
	"log"

	"repro/internal/codec"
	"repro/internal/metrics"
	"repro/internal/queries"
	"repro/internal/render"
	"repro/internal/vcity"
	"repro/internal/video"
)

func main() {
	city, err := vcity.Generate(vcity.Hyperparams{
		Scale: 1, Width: 192, Height: 108, Duration: 1.5, FPS: 15, Seed: 9,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Gather the four sub-cameras of the first panoramic camera.
	var subCams []*vcity.Camera
	for _, cam := range city.AllCameras() {
		if cam.Kind == vcity.PanoramicSubCamera {
			subCams = append(subCams, cam)
		}
		if len(subCams) == 4 {
			break
		}
	}
	var subVids []*video.Video
	for _, cam := range subCams {
		subVids = append(subVids, render.Capture(city, cam))
	}

	// Q9: stitch into an equirectangular 360° video.
	pano, err := queries.RunQ9(subVids, subCams)
	if err != nil {
		log.Fatal(err)
	}
	w, h := pano.Resolution()
	fmt.Printf("Q9: stitched %d frames at %dx%d (equirectangular)\n", len(pano.Frames), w, h)

	// Per-tile bitrates: high-importance tiles stream at b_h, the rest
	// at b_l (bits per second per tile).
	const bitsHigh, bitsLow = 120_000, 15_000

	// Baseline: every tile delivered at the high bitrate (the cost of
	// streaming the whole panorama at viewing quality).
	regionsAll, err := queries.Partition(pano, (w+2)/3, (h+2)/3)
	if err != nil {
		log.Fatal(err)
	}
	uniformBytes := 0
	for _, r := range regionsAll {
		enc, err := codec.EncodeVideo(r.Video, codec.Config{BitrateKbps: bitsHigh / 1000})
		if err != nil {
			log.Fatal(err)
		}
		uniformBytes += enc.Size()
	}

	// Q10: tile-based streaming — 3 high-importance tiles at b_h, the
	// remaining 6 at b_l, downsampled to a headset-like panel.
	tiles := make([]int, 9)
	for i := range tiles {
		if i < 3 {
			tiles[i] = bitsHigh
		} else {
			tiles[i] = bitsLow
		}
	}
	client, err := queries.RunQ10(pano, queries.Params{
		TileBitrates: tiles, ClientW: w / 2, ClientH: h / 2,
	}, codec.PresetHEVC)
	if err != nil {
		log.Fatal(err)
	}

	// The delivered payload under tiling: each tile re-encoded at its
	// assigned bitrate.
	delivered := 0
	for i, r := range regionsAll {
		enc, err := codec.EncodeVideo(r.Video, codec.Config{BitrateKbps: tiles[i%9] / 1000})
		if err != nil {
			log.Fatal(err)
		}
		delivered += enc.Size()
	}
	fmt.Printf("Q10: uniform high-quality payload %d bytes; tiled payload %d bytes (%.0f%% saved)\n",
		uniformBytes, delivered, 100*(1-float64(delivered)/float64(uniformBytes)))

	// Quality check: the client video still resembles the downsampled
	// original (PSNR against the untiled reference).
	ref := queries.Sample(pano, w/2, h/2)
	p, err := metrics.VideoPSNR(client, ref)
	if err != nil {
		log.Fatal(err)
	}
	cw, ch := client.Resolution()
	fmt.Printf("Q10: client stream %dx%d, %.1f dB PSNR vs untiled reference\n", cw, ch, p)
}
