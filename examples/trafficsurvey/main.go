// Trafficsurvey: the object-detection application behind composite
// query Q7. It watches every traffic camera of a Visual City, applies
// the detection pipeline (boxes → overlay → background masking), and
// prints a per-camera traffic survey — vehicle and pedestrian counts
// over time — validated against the simulation's exact ground truth.
package main

import (
	"fmt"
	"log"

	"repro/internal/detect"
	"repro/internal/queries"
	"repro/internal/render"
	"repro/internal/vcity"
)

func main() {
	city, err := vcity.Generate(vcity.Hyperparams{
		Scale: 2, Width: 320, Height: 180, Duration: 2, FPS: 15, Seed: 1234,
	})
	if err != nil {
		log.Fatal(err)
	}
	det := detect.NewYOLO(detect.ProfileSynthetic, 99)

	fmt.Println("camera            frames  vehicles  pedestrians  det/frame  gt/frame")
	for _, cam := range city.TrafficCameras() {
		v := render.Capture(city, cam)
		env := &queries.Env{City: city, Camera: cam, Detector: det}

		// Run the Q7 pipeline for both classes.
		outs, err := queries.RunQ7(v, queries.Params{
			Classes: []vcity.ObjectClass{vcity.ClassVehicle, vcity.ClassPedestrian},
			M:       6, Epsilon: 0.12,
		}, env)
		if err != nil {
			log.Fatal(err)
		}

		// Survey: count detections per class across the run, and
		// compare against ground truth density.
		dets, err := queries.DetectionsQ2c(v, queries.Params{
			Algorithm: "yolov2",
			Classes:   []vcity.ObjectClass{vcity.ClassVehicle, vcity.ClassPedestrian},
		}, env)
		if err != nil {
			log.Fatal(err)
		}
		var vehicles, pedestrians, gtTotal int
		tile := city.TileOf(cam)
		for i, frameDets := range dets {
			for _, d := range frameDets {
				if d.Class == vcity.ClassVehicle.String() {
					vehicles++
				} else {
					pedestrians++
				}
			}
			t := env.FrameTime(i, v.FPS)
			gtTotal += len(tile.GroundTruth(cam, t, 320, 180))
		}
		n := len(v.Frames)
		fmt.Printf("%-17s %6d %9d %12d %10.1f %9.1f\n",
			cam.ID, n, vehicles, pedestrians,
			float64(vehicles+pedestrians)/float64(n), float64(gtTotal)/float64(n))
		_ = outs // the masked per-class videos would be persisted by a real application
	}
}
