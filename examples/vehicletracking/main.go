// Vehicletracking: the license-plate tracking application behind
// composite query Q8. It picks vehicles from a simulated city, scans
// every traffic camera's video for frames where each vehicle's plate is
// identifiable, assembles the temporally-ordered tracking video of
// concatenated vehicle tracking segments (VTSs), and prints the track.
package main

import (
	"fmt"
	"log"

	"repro/internal/alpr"
	"repro/internal/detect"
	"repro/internal/queries"
	"repro/internal/render"
	"repro/internal/vcity"
	"repro/internal/video"
)

func main() {
	city, err := vcity.Generate(vcity.Hyperparams{
		Scale: 1, Width: 480, Height: 270, Duration: 4, FPS: 15, Seed: 77,
	})
	if err != nil {
		log.Fatal(err)
	}
	tile := city.Tiles[0]
	cams := city.TrafficCameras()
	det := detect.NewYOLO(detect.ProfileSynthetic, 5)
	rec := alpr.New()

	// Capture all traffic cameras once.
	var vids []*video.Video
	var envs []*queries.Env
	for _, cam := range cams {
		vids = append(vids, render.Capture(city, cam))
		envs = append(envs, &queries.Env{City: city, Camera: cam, Detector: det})
	}

	// Track the first few vehicles that are actually sighted.
	tracked := 0
	for _, veh := range tile.Vehicles {
		out, segs, err := queries.RunQ8(vids, envs, rec, veh.Plate)
		if err != nil {
			log.Fatal(err)
		}
		if len(segs) == 0 {
			continue
		}
		fmt.Printf("plate %s: %d tracking segment(s), %d frames of tracking video\n",
			veh.Plate, len(segs), len(out.Frames))
		for i, s := range segs {
			fmt.Printf("  VTS %d: camera %s frames [%d..%d] entry t=%.2fs\n",
				i+1, s.Camera.ID, s.FirstFrame, s.LastFrame, s.EntryTime)
		}
		tracked++
		if tracked >= 3 {
			break
		}
	}
	if tracked == 0 {
		fmt.Println("no vehicle was sighted by any camera (try another seed)")
	}
}
