package visualroad

import (
	"repro/internal/codec"
	"repro/internal/detect"
	"repro/internal/queries"
	"repro/internal/vcd"
	"repro/internal/vcg"
	"repro/internal/vcity"
	"repro/internal/vdbms"
	"repro/internal/vdbms/lightdblike"
	"repro/internal/vdbms/noscopelike"
	"repro/internal/vdbms/scannerlike"
	"repro/internal/vfs"
)

// Hyperparams are the benchmark's generation parameters: scale factor
// L, resolution R, duration t, and seed s (plus frame rate and camera
// configuration).
type Hyperparams = vcity.Hyperparams

// GenerateOptions configure dataset generation.
type GenerateOptions = vcg.Options

// GenerateResult summarizes a generation run.
type GenerateResult = vcg.Result

// Store is the storage abstraction datasets are staged on.
type Store = vfs.Store

// Dataset is a loaded Visual Road dataset ready for benchmarking.
type Dataset = vcd.Dataset

// System is a VDBMS under benchmark.
type System = vdbms.System

// QueryID identifies a benchmark query (Q1–Q10).
type QueryID = queries.QueryID

// RunOptions configure a benchmark run.
type RunOptions = vcd.Options

// RunReport is the result of a benchmark run.
type RunReport = vcd.RunReport

// Codec presets supported for inputs and results.
var (
	H264 = codec.PresetH264
	HEVC = codec.PresetHEVC
)

// The benchmark queries, in submission order.
var (
	AllQueries   = queries.AllQueries
	MicroQueries = queries.MicroQueries
)

// Result modes (Section 3.2 of the paper).
const (
	WriteMode     = vcd.WriteMode
	StreamingMode = vcd.StreamingMode
)

// NewLocalStore opens (creating if necessary) a directory-backed store.
func NewLocalStore(dir string) (Store, error) { return vfs.NewLocal(dir) }

// NewMemoryStore returns an in-memory store for transient datasets.
func NewMemoryStore() Store { return vfs.NewMemory() }

// NewDistributedStore returns a simulated distributed (HDFS-style)
// store sharded over n node directories with the given replication.
func NewDistributedStore(root string, nodes, replicas int) (Store, error) {
	return vfs.NewDistributed(root, nodes, replicas)
}

// Generate runs the Visual City Generator: it builds the city described
// by the hyperparameters, renders and encodes every camera's video, and
// stages the dataset (with its manifest) on the store. Identical
// hyperparameters always produce identical datasets.
func Generate(p Hyperparams, opt GenerateOptions, store Store) (*GenerateResult, error) {
	return vcg.Generate(p, opt, store)
}

// Load opens a generated dataset for benchmarking, regenerating the
// simulation state (cities are pure functions of their hyperparameters)
// for ground-truth validation.
func Load(store Store) (*Dataset, error) {
	return vcd.LoadDataset(store, detect.ProfileSynthetic)
}

// Run executes the benchmark against a system: for each selected query,
// a batch of instances is created with uniformly-sampled parameters,
// submitted, measured, and optionally validated.
func Run(ds *Dataset, sys System, opt RunOptions) (*RunReport, error) {
	return vcd.Run(ds, sys, opt)
}

// ScannerLike returns the bundled engine emulating Scanner's batch
// dataflow architecture (eager materialization, worker-pool kernels).
func ScannerLike() System { return scannerlike.New(scannerlike.Options{}) }

// LightDBLike returns the bundled engine emulating LightDB's lazy
// streaming algebra over a spherical coordinate model.
func LightDBLike() System { return lightdblike.New(lightdblike.Options{}) }

// NoScopeLike returns the bundled engine emulating NoScope's
// specialized inference-cascade architecture (supports Q1 and Q2(c)).
func NoScopeLike() System { return noscopelike.NewDefault() }
