package visualroad

// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation section, plus ablation benches for the design
// choices DESIGN.md calls out. Benchmarks run at model scale (small
// resolution, sub-second clips) so `go test -bench=.` completes on a
// laptop; cmd/vrbench runs the same experiments with adjustable knobs
// and prints the paper-shaped tables.

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/queries"
	"repro/internal/render"
	"repro/internal/stream"
	"repro/internal/vcd"
	"repro/internal/vcg"
	"repro/internal/vcity"
	"repro/internal/vdbms"
	"repro/internal/vdbms/noscopelike"
	"repro/internal/vfs"
	"repro/internal/video"
)

// obsEnabled turns the metrics registry on when the benchmark runs with
// VR_OBS=1; scripts/bench.sh invokes the hot benchmarks both ways to
// measure instrumentation overhead for BENCH_obs.json.
func obsEnabled(b *testing.B) {
	b.Helper()
	if os.Getenv("VR_OBS") == "1" {
		metrics.SetEnabled(true)
		b.Cleanup(func() { metrics.SetEnabled(false) })
	}
}

// benchDataset lazily generates one shared model-scale dataset.
var benchDataset struct {
	once sync.Once
	ds   *vcd.Dataset
	err  error
}

func sharedDataset(b *testing.B) *vcd.Dataset {
	b.Helper()
	benchDataset.once.Do(func() {
		store := vfs.NewMemory()
		_, err := vcg.Generate(vcity.Hyperparams{
			Scale: 2, Width: 192, Height: 108, Duration: 0.6, FPS: 15, Seed: 1,
		}, vcg.Options{Captions: true, QP: 22}, store)
		if err != nil {
			benchDataset.err = err
			return
		}
		benchDataset.ds, benchDataset.err = vcd.LoadDataset(store, detect.ProfileSynthetic)
	})
	if benchDataset.err != nil {
		b.Fatal(benchDataset.err)
	}
	return benchDataset.ds
}

// BenchmarkTable2Presets measures dataset generation for each Table 2
// preset at model scale (1/4 linear resolution, 0.5 s clips) — the cost
// structure of the paper's pregenerated datasets.
func BenchmarkTable2Presets(b *testing.B) {
	for _, p := range core.Presets {
		params := core.ModelPreset(p, 4, 0.5)
		params.FPS = 15
		params.Seed = 1
		b.Run(p.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				store := vfs.NewMemory()
				if _, err := vcg.Generate(params, vcg.Options{QP: 24}, store); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable9 measures each microbenchmark on both comparison
// engines over the four corpora of the dataset-validation experiment.
// The paper's shape: visual-road tracks the recorded baseline,
// duplicates flatter the caching engine, random noise inflates
// decode-bound queries.
func BenchmarkTable9(b *testing.B) {
	cfg := core.Table9Config{NumVideos: 3, Duration: 0.5, Width: 192, Height: 108, FPS: 15, Seed: 11, Instances: 2}
	corpora, err := core.BuildCorpora(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, corpus := range corpora {
		for _, q := range []queries.QueryID{queries.Q1, queries.Q2a, queries.Q2b, queries.Q5} {
			b.Run(fmt.Sprintf("%s/%s", corpus.Name, q), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.RunCorpusBatchForBench(corpus, q, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFigure5 measures each query batch on each engine over one
// shared dataset — the per-query system comparison.
func BenchmarkFigure5(b *testing.B) {
	ds := sharedDataset(b)
	for _, q := range queries.AllQueries {
		b.Run(string(q), func(b *testing.B) {
			for _, sys := range core.NewSystems(16<<20, 24<<20) {
				if !sys.Supports(q) {
					continue
				}
				b.Run(sys.Name(), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						_, err := vcd.Run(ds, sys, vcd.Options{
							Queries:           []queries.QueryID{q},
							InstancesPerScale: 1,
							Seed:              7,
							Mode:              vcd.StreamingMode,
							MaxUpsamplePixels: 1 << 21,
						})
						if err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		})
	}
}

// BenchmarkFigure6 sweeps the scale factor for a representative query
// subset — the runtime-vs-L comparison where the Scanner-like engine's
// materialization thrashes.
func BenchmarkFigure6(b *testing.B) {
	for _, L := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("L=%d", L), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := core.CompareSystems(core.CompareConfig{
					Scale: L, Duration: 0.4, Seed: 3,
					Queries:             []queries.QueryID{queries.Q1, queries.Q2c},
					InstancesPerScale:   1,
					ScannerMemoryBudget: 6 << 20,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure8 measures single-node generation by scale and
// resolution — approximately linear in L at each resolution.
func BenchmarkFigure8(b *testing.B) {
	for _, res := range []string{"1k", "2k"} {
		w, h, err := core.ModelResolution(res)
		if err != nil {
			b.Fatal(err)
		}
		for _, L := range []int{1, 2} {
			b.Run(fmt.Sprintf("%s/L=%d", res, L), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					store := vfs.NewMemory()
					_, err := vcg.Generate(vcity.Hyperparams{
						Scale: L, Width: w, Height: h, Duration: 0.4, FPS: 15, Seed: 5,
					}, vcg.Options{QP: 24}, store)
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFigure9 measures distributed generation by node count — the
// coordination-free linear speedup of parallel tile simulation. It runs
// in Sequential mode so each simulated node's work is timed without CPU
// contention from its peers (ClusterElapsed models node-per-machine).
func BenchmarkFigure9(b *testing.B) {
	for _, nodes := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				store := vfs.NewMemory()
				_, err := vcg.Generate(vcity.Hyperparams{
					Scale: 4, Width: 192, Height: 108, Duration: 0.4, FPS: 15, Seed: 5,
				}, vcg.Options{QP: 24, Nodes: nodes, Sequential: true}, store)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRunBatch measures batch execution in the sequential
// paper-faithful mode vs 8-way concurrent execution with the shared
// decoded-input cache, reporting the cache hit rate per configuration.
//
//   - full: a Q1–Q6 mix at the paper's default batch size (4·L
//     instances per query). Result encoding (part of measured execution
//     in both modes per §3.2) dominates the full-frame queries, so the
//     cache's win here is bounded by the decode share.
//   - decode-bound: the small-output queries (Q1 crop, Q5 sample) at
//     higher instance redundancy, where per-instance cost is mostly
//     input decode — the shared cache collapses it to one decode per
//     distinct camera.
//
// On a single-CPU host the speedup is purely avoided work; with more
// cores the worker pool overlaps the remaining compute as well.
//
// Expected shape on one CPU (VR_OBS=1 span totals for the full mix):
// decode shrinks ~166ms -> ~71ms (70% cache hit rate plus GOP-parallel
// decode on the misses) while result.encode (~340ms) and the kernels
// are mode-invariant, so parallel wins by the decode share — roughly
// 7%, not more. An earlier checked-in BENCH_query.json showed parallel
// 24% SLOWER on this mix; that inversion never reproduced under
// min-of-5 sampling (parallel beat serial in every back-to-back run)
// and traced to single-run cross-row scheduler noise, which is why
// scripts/bench.sh now emits this table with emit_json_min.
func BenchmarkRunBatch(b *testing.B) {
	obsEnabled(b)
	ds := sharedDataset(b)
	configs := []struct {
		name      string
		queries   []queries.QueryID
		instances int
	}{
		{"full", []queries.QueryID{
			queries.Q1, queries.Q2a, queries.Q2b, queries.Q2d, queries.Q5, queries.Q6a,
		}, 4},
		{"decode-bound", []queries.QueryID{queries.Q1, queries.Q5}, 16},
	}
	for _, cfg := range configs {
		for _, tc := range []struct {
			name string
			opt  vcd.Options
		}{
			{"serial", vcd.Options{Sequential: true}},
			// Workers: 0 selects parallel.Default(), which is bounded
			// by GOMAXPROCS — benchmarking an oversubscribed pool on a
			// small host measures scheduler churn, not the driver.
			{"parallel", vcd.Options{}},
		} {
			b.Run(cfg.name+"/"+tc.name, func(b *testing.B) {
				var hitRate float64
				for i := 0; i < b.N; i++ {
					opt := tc.opt
					opt.Queries = cfg.queries
					opt.InstancesPerScale = cfg.instances
					opt.Seed = 7
					opt.Mode = vcd.StreamingMode
					report, err := vcd.Run(ds, LightDBLike(), opt)
					if err != nil {
						b.Fatal(err)
					}
					hitRate = report.DecodedCache.HitRate()
				}
				b.ReportMetric(hitRate, "cache-hit-rate")
			})
		}
	}
}

// BenchmarkWriteVsStream measures the §6.4 result-mode comparison: the
// write-mode overhead should be small relative to processing.
func BenchmarkWriteVsStream(b *testing.B) {
	ds := sharedDataset(b)
	for _, mode := range []struct {
		name string
		mode vcd.ResultMode
	}{{"write", vcd.WriteMode}, {"streaming", vcd.StreamingMode}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := vcd.Options{
					Queries:           []queries.QueryID{queries.Q1, queries.Q2a},
					InstancesPerScale: 1,
					Seed:              7,
					Mode:              mode.mode,
				}
				if mode.mode == vcd.WriteMode {
					opt.ResultStore = vfs.NewMemory()
				}
				if _, err := vcd.Run(ds, LightDBLike(), opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCodecNoise isolates the Table 9 "Random" pathology:
// the codec compresses structured city frames but gains nothing on
// noise, inflating both encode time and payload.
func BenchmarkAblationCodecNoise(b *testing.B) {
	city, err := vcity.Generate(vcity.Hyperparams{
		Scale: 1, Width: 192, Height: 108, Duration: 0.5, FPS: 15, Seed: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	structured := render.Capture(city, city.TrafficCameras()[0])
	noise := video.NewVideo(15)
	rng := vcity.NewRNG(9)
	for range structured.Frames {
		f := video.NewFrame(192, 108)
		for i := range f.Y {
			f.Y[i] = byte(rng.Uint64())
		}
		noise.Append(f)
	}
	for _, tc := range []struct {
		name string
		v    *video.Video
	}{{"structured", structured}, {"noise", noise}} {
		b.Run(tc.name, func(b *testing.B) {
			var bytes int
			for i := 0; i < b.N; i++ {
				enc, err := codec.EncodeVideo(tc.v, codec.Config{QP: 24})
				if err != nil {
					b.Fatal(err)
				}
				bytes = enc.Size()
			}
			b.ReportMetric(float64(bytes), "payload-bytes")
		})
	}
}

// BenchmarkAblationCascade isolates the NoScope-like engine's
// difference-detector cascade — the design choice behind its Q2(c)
// speed.
func BenchmarkAblationCascade(b *testing.B) {
	ds := sharedDataset(b)
	for _, tc := range []struct {
		name    string
		cascade bool
	}{{"cascade-on", true}, {"cascade-off", false}} {
		b.Run(tc.name, func(b *testing.B) {
			sys := noscopelike.New(noscopelike.Options{Cascade: tc.cascade})
			for i := 0; i < b.N; i++ {
				_, err := vcd.Run(ds, sys, vcd.Options{
					Queries:           []queries.QueryID{queries.Q2c},
					InstancesPerScale: 1,
					Seed:              7,
					Mode:              vcd.StreamingMode,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMaterialization sweeps the Scanner-like memory
// budget: shrinking the materialization pool forces spill-and-page-in,
// the mechanism behind the paper's "memory thrashing" observation.
func BenchmarkAblationMaterialization(b *testing.B) {
	ds := sharedDataset(b)
	for _, budget := range []int64{1 << 20, 64 << 20} {
		b.Run(fmt.Sprintf("budget=%dMiB", budget>>20), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys := core.NewSystems(budget, 1<<30)[0]
				_, err := vcd.Run(ds, sys, vcd.Options{
					Queries:           []queries.QueryID{queries.Q2a, queries.Q2d},
					InstancesPerScale: 1,
					Seed:              7,
					Mode:              vcd.StreamingMode,
				})
				if err != nil {
					b.Fatal(err)
				}
				if sd, ok := sys.(interface{ Shutdown() }); ok {
					sd.Shutdown()
				}
			}
		})
	}
}

// BenchmarkAblationDetectorCost isolates the detector cost model: the
// convolution kernel is what makes detection queries dominate, as CNN
// inference does in the paper.
func BenchmarkAblationDetectorCost(b *testing.B) {
	city, err := vcity.Generate(vcity.Hyperparams{
		Scale: 1, Width: 192, Height: 108, Duration: 0.4, FPS: 15, Seed: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	cam := city.TrafficCameras()[0]
	v := render.Capture(city, cam)
	tile := city.TileOf(cam)
	for _, tc := range []struct {
		name   string
		passes int
	}{{"oracle-only", 0}, {"conv-cost", 4}} {
		b.Run(tc.name, func(b *testing.B) {
			det := detect.NewYOLO(detect.ProfileSynthetic, 5)
			det.CostPasses = tc.passes
			for i := 0; i < b.N; i++ {
				for fi, f := range v.Frames {
					t := float64(fi) / 15
					obs := tile.GroundTruth(cam, t, f.W, f.H)
					det.Detect(f, cam.ID, obs)
				}
			}
		})
	}
}

// BenchmarkOnlineFaults measures online-mode throughput over RTP on a
// fake clock (pure processing rate, no wall-clock pacing) at the
// BENCH_online.json fault ladder: clean channel, 1% drop, 5% drop. The
// reported fps and dropped-frame metrics show how gracefully the online
// decoder degrades as the seeded fault schedule intensifies.
func BenchmarkOnlineFaults(b *testing.B) {
	obsEnabled(b)
	ds := sharedDataset(b)
	opt := vcd.Options{InstancesPerScale: 1, Seed: 7, MaxUpsamplePixels: 1 << 22}
	for _, tc := range []struct {
		name string
		rate float64
	}{{"fault0", 0}, {"fault1", 0.01}, {"fault5", 0.05}} {
		b.Run(tc.name, func(b *testing.B) {
			insts, err := vcd.BuildBatch(ds, queries.Q2a, 1, opt)
			if err != nil {
				b.Fatal(err)
			}
			inst := insts[0]
			var fps, dropped float64
			for i := 0; i < b.N; i++ {
				var plan *stream.FaultPlan
				if tc.rate > 0 {
					plan = &stream.FaultPlan{Seed: 7, Camera: inst.Inputs[0].Env.Camera.ID, DropRate: tc.rate}
				}
				rep, err := vcd.RunOnlineOpts(context.Background(), inst, vcd.OnlineOptions{
					Transport: vcd.TransportRTP,
					Clock:     stream.NewFakeClock(time.Unix(0, 0)),
					Faults:    plan,
				})
				if err != nil {
					b.Fatal(err)
				}
				fps = rep.FPS
				dropped = float64(rep.FramesDropped)
			}
			b.ReportMetric(fps, "fps")
			b.ReportMetric(dropped, "dropped-frames")
		})
	}
}

// BenchmarkQualityAP measures the §6.3.1 detection-quality computation.
func BenchmarkQualityAP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.DetectionQuality(core.QualityConfig{Frames: 80, Seed: 21}); err != nil {
			b.Fatal(err)
		}
	}
}

var _ vdbms.System = (*noscopelike.Engine)(nil)
