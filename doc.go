// Package visualroad is a from-scratch Go reproduction of "Visual Road:
// A Video Data Management Benchmark" (Haynes et al., SIGMOD 2019) — a
// benchmark for video database management systems (VDBMSs).
//
// The package exposes the benchmark's three pillars:
//
//   - The Visual City Generator (VCG): deterministic, seeded generation
//     of synthetic traffic-camera and panoramic video from a simulated
//     metropolitan area, with exact ground truth derived from scene
//     geometry. See Generate.
//
//   - The Visual City Driver (VCD): query-batch submission (4·L
//     instances per query with uniformly sampled parameters), offline
//     and online delivery, write and streaming result modes, and frame
//     (PSNR) plus semantic validation. See Load and Run.
//
//   - The query suite: microbenchmarks Q1–Q6 (selection, grayscale,
//     blur, object-detection boxes, background masking, tiled
//     re-encoding, resampling, unions) and composites Q7–Q10 (object
//     detection pipeline, vehicle tracking, panoramic stitching,
//     tile-based streaming).
//
// Three bundled engines — ScannerLike, LightDBLike, and NoScopeLike —
// emulate the architectures of the systems the paper evaluates and can
// be benchmarked out of the box; any VDBMS can participate by
// implementing the System interface.
//
// Every substrate the paper depends on (the CARLA/Unreal simulator, the
// H.264/HEVC codecs, MP4 containers, WebVTT, YOLOv2, OpenALPR, RTP) is
// implemented in this module using only the Go standard library; see
// DESIGN.md for the substitution inventory.
package visualroad
