// Command vcg is the Visual City Generator: it generates a Visual Road
// dataset — encoded videos for every camera in a simulated city, plus a
// manifest — from the benchmark hyperparameters.
//
// Usage:
//
//	vcg -out DIR [-scale L] [-res 1k|2k|4k|WxH] [-duration SECONDS]
//	    [-fps N] [-seed S] [-codec h264|hevc] [-bitrate KBPS]
//	    [-nodes N] [-workers N] [-sequential]
//	    [-profile synthetic|recorded] [-tile-grid RxC]
//
// Example:
//
//	vcg -out /tmp/vr -scale 2 -res 1k -duration 10 -seed 42
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/codec"
	"repro/internal/vcg"
	"repro/internal/vcity"
	"repro/internal/vfs"
)

func main() {
	out := flag.String("out", "", "output directory (required)")
	scale := flag.Int("scale", 1, "scale factor L (number of tiles)")
	res := flag.String("res", "1k", "resolution: 1k, 2k, 4k, or WxH")
	duration := flag.Float64("duration", 10, "per-camera duration in seconds")
	fps := flag.Int("fps", 30, "frame rate (15-90)")
	seed := flag.Uint64("seed", 0, "dataset seed")
	codecName := flag.String("codec", "h264", "output codec: h264 or hevc")
	bitrate := flag.Int("bitrate", 0, "target bitrate in kbps (0 = constant quality)")
	nodes := flag.Int("nodes", 1, "simulated generation nodes (Figure 9 accounting)")
	workers := flag.Int("workers", 0, "worker goroutines (0 = one per CPU, capped at 8); output bytes are identical at any count")
	sequential := flag.Bool("sequential", false, "disable parallelism: contention-free Figure 9 measurement mode")
	profile := flag.String("profile", "synthetic", "capture profile: synthetic or recorded")
	weather := flag.String("weather", "any", "tile weather filter: any, dry, rain")
	density := flag.String("density", "any", "tile density filter: any, Sparse, Moderate, RushHour")
	traffic := flag.Int("traffic-cams", 4, "traffic cameras per tile")
	pano := flag.Int("pano-cams", 1, "panoramic cameras per tile")
	tileGrid := flag.String("tile-grid", "1x1", "encode frames as an RxC grid of independently decodable tiles (1x1 = untiled)")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "vcg: -out is required")
		flag.Usage()
		os.Exit(2)
	}
	w, h, err := parseResolution(*res)
	if err != nil {
		fatal(err)
	}
	preset, err := codec.PresetByName(*codecName)
	if err != nil {
		fatal(err)
	}
	var prof vcg.Profile
	switch *profile {
	case "synthetic":
		prof = vcg.ProfileSynthetic
	case "recorded":
		prof = vcg.ProfileRecorded
	default:
		fatal(fmt.Errorf("vcg: unknown profile %q", *profile))
	}
	tileRows, tileCols, err := parseTileGrid(*tileGrid)
	if err != nil {
		fatal(err)
	}
	store, err := vfs.NewLocal(*out)
	if err != nil {
		fatal(err)
	}
	params := vcity.Hyperparams{
		Scale: *scale, Width: w, Height: h,
		Duration: *duration, FPS: *fps, Seed: *seed,
		Cameras: vcity.CameraConfig{Traffic: *traffic, Panoramic: *pano},
	}
	fmt.Printf("vcg: generating L=%d %dx%d %.0fs @%dfps seed=%d (%s, %d node(s))\n",
		params.Scale, w, h, *duration, *fps, *seed, preset.Name, *nodes)
	wf, df := *weather, *density
	result, err := vcg.Generate(params, vcg.Options{
		Preset: preset, BitrateKbps: *bitrate, Nodes: *nodes,
		Workers: *workers, Sequential: *sequential,
		Profile: prof, Captions: true,
		WeatherFilter: wf, DensityFilter: df,
		TileRows: tileRows, TileCols: tileCols,
	}, store)
	if err != nil {
		fatal(err)
	}
	total := 0
	for _, v := range result.Manifest.Videos {
		total += v.Bytes
	}
	fmt.Printf("vcg: generated %d videos (%d bytes) in %s\n",
		len(result.Manifest.Videos), total, result.Elapsed.Round(1e6))
	for i, t := range result.NodeTimes {
		fmt.Printf("vcg:   node %d: %s\n", i, t.Round(1e6))
	}
}

// parseResolution accepts the named benchmark resolutions (at the
// paper's dimensions) or an explicit WxH.
func parseResolution(s string) (int, int, error) {
	switch s {
	case "1k":
		return 960, 540, nil
	case "2k":
		return 1920, 1080, nil
	case "4k":
		return 3840, 2160, nil
	}
	parts := strings.SplitN(s, "x", 2)
	if len(parts) == 2 {
		w, err1 := strconv.Atoi(parts[0])
		h, err2 := strconv.Atoi(parts[1])
		if err1 == nil && err2 == nil && w > 0 && h > 0 {
			return w, h, nil
		}
	}
	return 0, 0, fmt.Errorf("vcg: cannot parse resolution %q (use 1k, 2k, 4k, or WxH)", s)
}

// parseTileGrid accepts an RxC grid spec, e.g. "2x2" or "1x4".
func parseTileGrid(s string) (rows, cols int, err error) {
	parts := strings.SplitN(s, "x", 2)
	if len(parts) == 2 {
		r, err1 := strconv.Atoi(parts[0])
		c, err2 := strconv.Atoi(parts[1])
		if err1 == nil && err2 == nil && r > 0 && c > 0 {
			return r, c, nil
		}
	}
	return 0, 0, fmt.Errorf("vcg: bad tile grid %q (want RxC, e.g. 2x2)", s)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "vcg: %v\n", err)
	os.Exit(1)
}
