// Command vrserved runs the Visual Road benchmark as a service: a
// long-running daemon exposing an HTTP admin API for registering
// datasets and submitting query batches as jobs, executed through the
// shard coordinator against a pool of worker processes (or in-process
// pipe workers in single-node mode).
//
// Usage:
//
//	vrserved -data-dir DIR [-listen ADDR]
//	    [-shard-addrs HOST:PORT,... | -shard-workers N]
//	    [-tenant-limit N] [-queue-limit N] [-concurrency N]
//
// Example (two-worker pool):
//
//	vcd -shard-worker -shard-listen 127.0.0.1:7001 -data /tmp/vr &
//	vcd -shard-worker -shard-listen 127.0.0.1:7002 -data /tmp/vr &
//	vrserved -data-dir /tmp/vrserved -shard-addrs 127.0.0.1:7001,127.0.0.1:7002
//
//	curl -s localhost:8080/api/datasets -d '{"name":"vr","path":"/tmp/vr"}'
//	curl -s localhost:8080/api/jobs -d '{"dataset":"vr","queries":["Q1","Q5"]}'
//	curl -s localhost:8080/api/jobs/<id>/report
//
// The daemon shuts down on SIGINT/SIGTERM: the listener closes, running
// jobs finish (a second signal kills the process), and still-queued
// jobs surface as failed on the next boot.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/serve"
)

func main() { os.Exit(run()) }

func run() int {
	listen := flag.String("listen", "127.0.0.1:8080", "admin API listen address")
	dataDir := flag.String("data-dir", "", "persistence root: job journal, reports, dataset registry (required)")
	shardAddrs := flag.String("shard-addrs", "", "comma-separated addresses of shard workers (vcd -shard-worker); empty = in-process workers")
	shardWorkers := flag.Int("shard-workers", 1, "in-process pipe workers per job in single-node mode")
	tenantLimit := flag.Int("tenant-limit", 4, "max queued+running jobs per tenant (X-Tenant header); over-limit submissions get 429")
	queueLimit := flag.Int("queue-limit", 64, "bound on the job queue; submissions beyond it get 429")
	concurrency := flag.Int("concurrency", 1, "jobs executing at once")
	heartbeat := flag.Duration("heartbeat", 0, "shard-plane liveness window (0 = default)")
	flag.Parse()

	if *dataDir == "" {
		fmt.Fprintln(os.Stderr, "vrserved: -data-dir is required")
		flag.Usage()
		return 2
	}

	// A daemon is observable from birth: counters, the event journal,
	// and Prometheus exposition ride the admin listener under /debug/.
	metrics.SetEnabled(true)

	logger := log.New(os.Stderr, "vrserved: ", log.LstdFlags)
	var addrs []string
	for _, part := range strings.Split(*shardAddrs, ",") {
		if part = strings.TrimSpace(part); part != "" {
			addrs = append(addrs, part)
		}
	}
	s, err := serve.New(serve.Options{
		DataDir:     *dataDir,
		WorkerAddrs: addrs,
		Shards:      *shardWorkers,
		Heartbeat:   *heartbeat,
		MaxQueued:   *queueLimit,
		TenantLimit: *tenantLimit,
		Concurrency: *concurrency,
		Logf:        logger.Printf,
	})
	if err != nil {
		logger.Print(err)
		return 1
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		logger.Print(err)
		return 1
	}
	httpSrv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	ctx, stop := serve.SignalContext(context.Background())
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	if len(addrs) > 0 {
		logger.Printf("serving on http://%s (worker pool: %s)", ln.Addr(), strings.Join(addrs, ", "))
	} else {
		logger.Printf("serving on http://%s (single-node, %d in-process workers)", ln.Addr(), *shardWorkers)
	}

	// Run the executor until a signal arrives (or the HTTP server dies),
	// then drain: stop accepting HTTP, let running jobs settle (Run
	// waits for them on cancellation before returning).
	runc := make(chan error, 1)
	go func() { runc <- s.Run(ctx) }()
	status := 0
	var runErr error
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Print(err)
			status = 1
		}
		stop()
		runErr = <-runc
	case runErr = <-runc:
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(sctx)
	}
	if runErr != nil && !errors.Is(runErr, context.Canceled) {
		logger.Print(runErr)
		status = 1
	}
	if status == 0 {
		logger.Print("shutdown complete")
	}
	return status
}
