package main

import (
	"fmt"

	"repro/internal/vcity"
)

func main() {
	for _, seed := range []uint64{9, 42, 77, 123, 500} {
		city, _ := vcity.Generate(vcity.Hyperparams{Scale: 1, Width: 480, Height: 270, Duration: 4, FPS: 15, Seed: seed})
		tile := city.Tiles[0]
		count := 0
		vehSeen := map[int]bool{}
		for _, cam := range city.TrafficCameras() {
			for f := 0; f < 60; f++ {
				t := float64(f) / 15
				for _, v := range tile.Vehicles {
					obs := tile.PlateAt(cam, t, v, 480, 270)
					if obs.Identifiable {
						count++
						vehSeen[v.ID] = true
					}
				}
			}
		}
		fmt.Printf("seed %d: %d identifiable plate-frames, %d distinct vehicles\n", seed, count, len(vehSeen))
	}
}
