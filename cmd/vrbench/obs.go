package main

// Observability plumbing for the vrbench CLI: the -metrics-json
// artifact (process-level plus per-system/per-query telemetry gathered
// from comparison experiments), the -trace execution tracer, and the
// atomic -cpuprofile/-memprofile writers.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"

	"repro/internal/core"
	"repro/internal/metrics"
)

// cellTelemetryJSON is one (system, query) batch's telemetry in the
// -metrics-json artifact.
type cellTelemetryJSON struct {
	System    string             `json:"system"`
	Query     string             `json:"query"`
	Scale     int                `json:"scale"`
	ElapsedMS float64            `json:"elapsed_ms"`
	Telemetry *metrics.Telemetry `json:"telemetry"`
}

// runTelemetryJSON is one system's whole-run roll-up.
type runTelemetryJSON struct {
	System       string                 `json:"system"`
	Scale        int                    `json:"scale"`
	DecodedCache metrics.CacheTelemetry `json:"decoded_cache"`
	Telemetry    *metrics.Telemetry     `json:"telemetry"`
}

// metricsArtifact is the -metrics-json schema (see README
// "Observability"): process-level telemetry, per-run and per-query
// roll-ups, plus the invocation's distributed-trace summary and event
// journal.
type metricsArtifact struct {
	Process metrics.Telemetry    `json:"process"`
	Runs    []runTelemetryJSON   `json:"runs,omitempty"`
	Queries []cellTelemetryJSON  `json:"queries,omitempty"`
	Trace   *metrics.TraceReport `json:"trace,omitempty"`
	Events  []metrics.Event      `json:"events,omitempty"`
}

// collected accumulates per-batch and per-run telemetry from every
// comparison result printed during the invocation. Experiments run
// sequentially, so no locking is needed.
var collected struct {
	runs    []runTelemetryJSON
	queries []cellTelemetryJSON
}

// collectTelemetry records a comparison result's telemetry for the
// -metrics-json artifact.
func collectTelemetry(res *core.ComparisonResult) {
	if !metrics.Enabled() {
		return
	}
	for _, cell := range res.Cells {
		if cell.Telemetry == nil {
			continue
		}
		collected.queries = append(collected.queries, cellTelemetryJSON{
			System:    cell.System,
			Query:     string(cell.Query),
			Scale:     res.Config.Scale,
			ElapsedMS: cell.Elapsed.Seconds() * 1000,
			Telemetry: cell.Telemetry,
		})
	}
	for _, run := range res.Runs {
		collected.runs = append(collected.runs, runTelemetryJSON{
			System:       run.System,
			Scale:        res.Config.Scale,
			DecodedCache: run.Cache.Report(),
			Telemetry:    run.Telemetry,
		})
	}
}

// writeMetricsJSON serializes the telemetry artifact atomically:
// written to a temp file and renamed into place, so a crash mid-write
// never leaves a truncated artifact.
func writeMetricsJSON(path string, base metrics.Snapshot, traceBase, eventBase uint64) error {
	art := metricsArtifact{
		Process: metrics.Capture().Sub(base),
		Runs:    collected.runs,
		Queries: collected.queries,
		Events:  metrics.EventsSince(eventBase),
	}
	if spans := metrics.TraceSpansSince(traceBase); len(spans) > 0 {
		art.Trace = metrics.SummarizeTraces(spans)
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	return atomicWrite(path, append(data, '\n'))
}

// atomicWrite lands data at path via temp-file rename.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// startTrace begins a Go execution trace into path; the returned stop
// flushes, closes, and reports any error.
func startTrace(path string) (func(), error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, err
	}
	if err := rtrace.Start(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	return func() {
		rtrace.Stop()
		finishProfile("trace", f, tmp, path)
	}, nil
}

// startCPUProfile begins CPU profiling into path via a temp file; the
// returned stop flushes the profile, reports close errors, and renames
// the finished file into place.
func startCPUProfile(path string) (func(), error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		finishProfile("cpuprofile", f, tmp, path)
	}, nil
}

// writeHeapProfile snapshots the heap into path atomically, reporting
// write and close errors instead of swallowing them.
func writeHeapProfile(path string) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vrbench: memprofile: %v\n", err)
		return
	}
	runtime.GC() // settle live-heap numbers before the snapshot
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "vrbench: memprofile: %v\n", err)
		f.Close()
		os.Remove(tmp)
		return
	}
	finishProfile("memprofile", f, tmp, path)
}

// finishProfile closes a finished profile temp file — reporting, not
// ignoring, the close error (a full disk surfaces here) — and renames
// it to its final path only on success.
func finishProfile(kind string, f *os.File, tmp, path string) {
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "vrbench: %s: close: %v\n", kind, err)
		os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		fmt.Fprintf(os.Stderr, "vrbench: %s: %v\n", kind, err)
		os.Remove(tmp)
	}
}
