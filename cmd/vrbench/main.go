// Command vrbench reproduces the tables and figures of the Visual Road
// paper's evaluation section at model scale, printing the measured rows
// or series alongside the paper's reported shape.
//
// Usage:
//
//	vrbench -exp table1|table2|table9|fig2|fig5|fig6|fig7|fig8|fig9|quality|modes|online|shard|tile|all [flags]
//	vrbench -shard-worker [-shard-listen ADDR]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/queries"
	"repro/internal/shard"
)

func main() { os.Exit(run()) }

// exitDebugClose is the exit status when the experiments themselves
// succeeded but the debug server failed mid-run — distinct from 1
// (experiment failure) and 2 (usage) so scrapers polling /debug
// endpoints learn their window had a hole.
const exitDebugClose = 3

// closeDebug shuts the debug server down and maps the outcome to an
// exit status contribution: 0 when there was no server or it closed
// cleanly, exitDebugClose when the close surfaced a mid-run failure.
func closeDebug(closeFn func() error) int {
	if closeFn == nil {
		return 0
	}
	if err := closeFn(); err != nil {
		fmt.Fprintf(os.Stderr, "vrbench: debug server: %v\n", err)
		return exitDebugClose
	}
	return 0
}

// run holds the whole CLI body so profile-writing defers fire on every
// exit path (os.Exit would skip them).
func run() (code int) {
	exp := flag.String("exp", "all", "experiment to run (table1, table2, table9, fig2, fig5, fig6, fig7, fig8, fig9, quality, modes, online, shard, all)")
	scale := flag.Int("scale", 4, "scale factor L for comparison experiments")
	duration := flag.Float64("duration", 1.0, "per-camera video duration in seconds (model scale)")
	videos := flag.Int("videos", 6, "corpus size for the table9 experiment")
	frames := flag.Int("frames", 240, "frames per corpus for the quality experiment")
	seed := flag.Uint64("seed", 1, "dataset seed")
	workers := flag.Int("workers", 0, "dataset-generation worker goroutines (0 = one per CPU); bytes are identical at any count")
	queryWorkers := flag.Int("query-workers", 0, "concurrent query instances per batch (0 = one per CPU, 1 = serial); results are identical at any count")
	sequential := flag.Bool("sequential", false, "paper-faithful execution: one query instance at a time, no shared decode cache (overrides -query-workers)")
	fullDecode := flag.Bool("full-decode", false, "disable range-aware decode: windowed queries slice whole-clip decodes (the pre-range baseline)")
	validate := flag.Bool("validate", false, "validate comparison results against the reference implementation (fig5/fig6)")
	onlineFaults := flag.String("online-faults", "", "comma-separated drop rates for the online experiment (default 0,0.01,0.05)")
	onlineSeed := flag.Uint64("online-seed", 1, "seed keying the online fault schedule")
	shardWorkers := flag.Int("shard-workers", 0, "route fig5's batches through the shard plane with N in-process workers (0/1 = single-process); results are identical at any count")
	shardAddrs := flag.String("shard-addrs", "", "comma-separated addresses of remote shard workers (vrbench -shard-worker); overrides -shard-workers")
	shardWorkerMode := flag.Bool("shard-worker", false, "run as a shard worker: serve coordinator connections instead of running experiments")
	shardListen := flag.String("shard-listen", "127.0.0.1:0", "listen address in -shard-worker mode")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	metricsJSON := flag.String("metrics-json", "", "write pipeline telemetry (stage histograms, gauges, cache stats) as JSON to this file")
	reportFlag := flag.Bool("report", false, "print the stage-breakdown telemetry table after the experiments")
	debugAddr := flag.String("debug-addr", "", "serve live telemetry and pprof handlers on this address (e.g. localhost:6060)")
	traceFile := flag.String("trace", "", "write a Go execution trace to this file (stage spans appear as user regions)")
	flag.Parse()

	if *shardWorkerMode {
		return runShardWorker(*shardListen)
	}
	if *metricsJSON != "" || *reportFlag || *debugAddr != "" {
		metrics.SetEnabled(true)
	}
	if *debugAddr != "" {
		addr, closeFn, err := metrics.ServeDebug(*debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vrbench: debug-addr: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "vrbench: serving telemetry on http://%s/debug/metrics\n", addr)
		// A mid-run server failure surfaces from the closer; it must
		// change the exit status even when the experiments passed.
		defer func() {
			if c := closeDebug(closeFn); code == 0 {
				code = c
			}
		}()
	}
	if *traceFile != "" {
		stop, err := startTrace(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vrbench: trace: %v\n", err)
			return 1
		}
		defer stop()
	}
	if *cpuprofile != "" {
		stop, err := startCPUProfile(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vrbench: cpuprofile: %v\n", err)
			return 1
		}
		defer stop()
	}
	if *memprofile != "" {
		defer writeHeapProfile(*memprofile)
	}
	base := metrics.Capture()
	traceBase := metrics.TraceSeq()
	eventBase := metrics.EventSeq()

	runners := map[string]func() error{
		"table1": runTable1,
		"table2": runTable2,
		"table9": func() error { return runTable9(*videos, *duration, *seed, *workers) },
		"fig2":   func() error { return runFig2(*scale, *seed) },
		"fig5": func() error {
			return runFig5(*scale, *duration, *seed, *workers, *queryWorkers, *sequential, *fullDecode, *validate,
				*shardWorkers, *shardAddrs)
		},
		"fig6": func() error {
			return runFig6(*duration, *seed, *workers, *queryWorkers, *sequential, *fullDecode, *validate)
		},
		"fig7":    runFig7,
		"fig8":    func() error { return runFig8(*duration, *seed, *workers) },
		"fig9":    func() error { return runFig9(*duration, *seed) },
		"quality": func() error { return runQuality(*frames, *seed) },
		"modes":   func() error { return runModes(*scale, *duration, *seed, *queryWorkers, *sequential, *fullDecode) },
		"online":  func() error { return runOnline(*scale, *duration, *onlineSeed, *onlineFaults) },
		"shard":   func() error { return runShardSweep(*scale, *duration, *seed, *workers) },
		"tile":    func() error { return runTileSweep(*scale, *duration, *seed, *workers, *queryWorkers) },
	}
	order := []string{"table1", "table2", "fig2", "table9", "fig5", "fig6", "fig7", "fig8", "fig9", "quality", "modes", "online", "shard", "tile"}

	switch {
	case *exp == "all":
		for _, name := range order {
			fmt.Printf("\n================ %s ================\n", name)
			if err := runners[name](); err != nil {
				fmt.Fprintf(os.Stderr, "vrbench: %s: %v\n", name, err)
				code = 1
				break
			}
		}
	default:
		runner, ok := runners[*exp]
		if !ok {
			fmt.Fprintf(os.Stderr, "vrbench: unknown experiment %q (have: %s, all)\n", *exp, strings.Join(order, ", "))
			return 2
		}
		if err := runner(); err != nil {
			fmt.Fprintf(os.Stderr, "vrbench: %v\n", err)
			code = 1
		}
	}

	if *reportFlag {
		fmt.Println("\n---- pipeline telemetry ----")
		metrics.Capture().Sub(base).WriteTable(os.Stdout)
	}
	if *metricsJSON != "" {
		if err := writeMetricsJSON(*metricsJSON, base, traceBase, eventBase); err != nil {
			fmt.Fprintf(os.Stderr, "vrbench: metrics-json: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
	}
	return code
}

func runTable1() error {
	fmt.Println("Table 1: distinct inputs used by recent VDBMS evaluations (static survey data)")
	fmt.Printf("%-12s %s\n", "Name", "# Distinct Inputs")
	for _, e := range core.Table1 {
		fmt.Printf("%-12s %s\n", e.Name, e.DistinctInputs)
	}
	return nil
}

func runTable2() error {
	fmt.Println("Table 2: pregenerated dataset configurations")
	fmt.Printf("%-10s %-6s %-12s %-10s\n", "Name", "L", "Resolution", "Duration")
	for _, p := range core.Presets {
		fmt.Printf("%-10s %-6d %dx%-7d %4.0f min\n",
			p.Name, p.Params.Scale, p.Params.Width, p.Params.Height, p.Params.Duration/60)
	}
	return nil
}

func runTable9(videos int, duration float64, seed uint64, workers int) error {
	fmt.Println("Table 9: dataset validation (runtimes + speedup vs recorded baseline)")
	fmt.Println("paper shape: Visual Road tracks baseline (0.6-1.0x); Duplicates let caching")
	fmt.Println("engines over-optimize (red/yellow); Random inflates decode-bound queries (4-26x)")
	res, err := core.Table9(core.Table9Config{NumVideos: videos, Duration: duration, Seed: seed, Workers: workers})
	if err != nil {
		return err
	}
	printTable9(res)
	return nil
}

func printTable9(res *core.Table9Result) {
	systems := []string{"lightdblike", "scannerlike"}
	fmt.Printf("%-7s", "Query")
	for _, c := range res.Corpora {
		for _, s := range systems {
			fmt.Printf(" %18s", fmt.Sprintf("%s/%s", shortCorpus(c), shortSys(s)))
		}
	}
	fmt.Println()
	for _, q := range res.Config.Queries {
		fmt.Printf("%-7s", q)
		for _, c := range res.Corpora {
			for _, s := range systems {
				cell, ok := res.Cell(q, s, c)
				if !ok {
					fmt.Printf(" %18s", "-")
					continue
				}
				mark := ""
				if cell.Magnitude {
					mark = "!"
				}
				if res.Disagreements[string(q)+"|"+c] {
					mark += "*"
				}
				fmt.Printf(" %18s", fmt.Sprintf("%7.0fms (%4.1fx)%s", cell.Elapsed.Seconds()*1000, cell.Ratio, mark))
			}
		}
		fmt.Println()
	}
	fmt.Println("(! = order-of-magnitude discrepancy vs baseline; * = faster system flips)")
}

func shortCorpus(c string) string {
	switch c {
	case "ua-detrac-proxy":
		return "base"
	case "visual-road":
		return "vroad"
	}
	return c
}

func shortSys(s string) string { return strings.TrimSuffix(s, "like") }

func runFig5(scale int, duration float64, seed uint64, workers, queryWorkers int, sequential, fullDecode, validate bool, shardWorkers int, shardAddrs string) error {
	fmt.Printf("Figure 5: runtime by query, L=%d (model scale)\n", scale)
	fmt.Println("paper shape: NoScope fastest on Q2(c), supports only Q1/Q2(c);")
	fmt.Println("composites/VR (Q7-Q10) cost more than micro queries; Q2(c) detector-bound")
	cfg := core.CompareConfig{
		Scale: scale, Duration: duration, Seed: seed, Workers: workers,
		QueryWorkers: queryWorkers, QuerySequential: sequential, QueryFullDecode: fullDecode,
		Validate:     validate,
		ShardWorkers: shardWorkers, ShardAddrs: splitAddrs(shardAddrs),
	}
	if cfg.Sharded() {
		fmt.Printf("(sharded execution: %d workers)\n", max(cfg.ShardWorkers, len(cfg.ShardAddrs)))
	}
	res, err := core.CompareSystems(cfg)
	if err != nil {
		return err
	}
	printComparison(res)
	for _, r := range res.Runs {
		if r.Shard != nil {
			fmt.Printf("shard[%s]: %d workers, %d failures, %d reassignments, %d instances retried\n",
				r.System, r.Shard.Workers, r.Shard.WorkerFailures, r.Shard.Reassignments, r.Shard.RetriedInstances)
		}
	}
	return nil
}

func printComparison(res *core.ComparisonResult) {
	collectTelemetry(res)
	systems := []string{"scannerlike", "lightdblike", "noscopelike"}
	fmt.Printf("%-7s %15s %15s %15s\n", "Query", systems[0], systems[1], systems[2])
	for _, q := range res.Config.Queries {
		fmt.Printf("%-7s", q)
		for _, s := range systems {
			cell, ok := res.Cell(s, q)
			switch {
			case !ok || !cell.Supported:
				fmt.Printf(" %15s", "unsupported")
			case cell.ResourceErrors > 0 && cell.ResourceErrors == cell.BatchSize:
				fmt.Printf(" %15s", "FAILED(mem)")
			default:
				note := ""
				if cell.BatchSplits > 0 {
					note = fmt.Sprintf("+%dsplit", cell.BatchSplits)
				}
				if cell.ResourceErrors > 0 {
					note += fmt.Sprintf(" mem%d/%d", cell.ResourceErrors, cell.BatchSize)
				}
				fmt.Printf(" %15s", fmt.Sprintf("%.0fms%s", cell.Elapsed.Seconds()*1000, note))
			}
		}
		fmt.Println()
	}
}

func runFig6(duration float64, seed uint64, workers, queryWorkers int, sequential, fullDecode, validate bool) error {
	fmt.Println("Figure 6: runtime vs scale factor per system")
	fmt.Println("paper shape: Scanner falls behind as L grows (materialization thrashing);")
	fmt.Println("Q4 fails on Scanner; LightDB splits Q3/Q4 batches past its 40-video limit")
	points, err := core.ScaleSweep(core.CompareConfig{
		Duration: duration, Seed: seed, Workers: workers,
		QueryWorkers: queryWorkers, QuerySequential: sequential, QueryFullDecode: fullDecode,
		Validate:            validate,
		Queries:             []queries.QueryID{queries.Q1, queries.Q2a, queries.Q2c, queries.Q4, queries.Q5},
		ScannerMemoryBudget: 6 << 20,
	}, []int{1, 2, 4, 8})
	if err != nil {
		return err
	}
	for _, pt := range points {
		fmt.Printf("\n-- L = %d --\n", pt.Scale)
		printComparison(pt.Result)
	}
	return nil
}

func runFig7() error {
	fmt.Println("Figure 7: lines of code per query per system (query + extension)")
	fmt.Println("paper shape: Scanner/LightDB similar; NoScope needs only a few lines")
	rows := core.LinesOfCode()
	fmt.Printf("%-7s %-13s %8s %10s\n", "Query", "System", "QueryLOC", "Extension")
	for _, r := range rows {
		if !r.Supported {
			fmt.Printf("%-7s %-13s %8s %10s\n", r.Query, r.System, "-", "-")
			continue
		}
		fmt.Printf("%-7s %-13s %8d %10d\n", r.Query, r.System, r.QueryLOC, r.Extension)
	}
	return nil
}

func runFig8(duration float64, seed uint64, workers int) error {
	fmt.Println("Figure 8: single-node generation time by scale and resolution")
	fmt.Println("paper shape: approximately linear in L at each resolution")
	points, err := core.GeneratorScaleSweep([]int{1, 2, 4}, []string{"1k", "2k", "4k"}, duration, seed, workers)
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %-6s %-10s %12s %12s\n", "Res", "L", "Pixels", "Elapsed", "Bytes")
	for _, p := range points {
		fmt.Printf("%-6s %-6d %dx%-5d %12s %12d\n", p.Resolution, p.Scale, p.Width, p.Height, p.Elapsed.Round(1e6), p.Bytes)
	}
	return nil
}

func runFig9(duration float64, seed uint64) error {
	fmt.Println("Figure 9: distributed generation time by node count (L=4, 1k)")
	fmt.Println("paper shape: linear speedup — generation needs no coordination")
	points, err := core.GeneratorNodeSweep(4, []int{1, 2, 4, 8}, duration, seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %12s\n", "Nodes", "Elapsed")
	for _, p := range points {
		fmt.Printf("%-6d %12s\n", p.Nodes, p.Elapsed.Round(1e6))
	}
	return nil
}

func runQuality(frames int, seed uint64) error {
	fmt.Println("§6.3.1: detection quality (AP@0.5, vehicles)")
	res, err := core.DetectionQuality(core.QualityConfig{Frames: frames, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("%-22s %10s %10s %8s\n", "Corpus", "AP@0.5", "Paper", "F1")
	fmt.Printf("%-22s %9.0f%% %9.0f%% %7.0f%%\n", "Visual Road", res.APVisualRoad*100, res.PaperVisualRoad*100, res.F1VisualRoad*100)
	fmt.Printf("%-22s %9.0f%% %9.0f%% %7.0f%%\n", "UA-DETRAC (proxy)", res.APRecordedProxy*100, res.PaperRecorded*100, res.F1RecordedProxy*100)
	fmt.Printf("%-22s %10s %9.0f%%\n", "VOC reference", "-", res.PaperVOCReference*100)
	return nil
}

func runModes(scale int, duration float64, seed uint64, queryWorkers int, sequential, fullDecode bool) error {
	fmt.Println("§6.4: write vs streaming mode (paper: deltas under 2.5%)")
	res, err := core.WriteVsStreaming(core.CompareConfig{
		Scale: scale, Duration: duration, Seed: seed,
		QueryWorkers: queryWorkers, QuerySequential: sequential, QueryFullDecode: fullDecode,
	}, nil)
	if err != nil {
		return err
	}
	fmt.Printf("%-13s %12s %12s %8s\n", "System", "Write", "Streaming", "Delta")
	for _, r := range res {
		fmt.Printf("%-13s %12s %12s %7.1f%%\n", r.System, r.Write.Round(1e6), r.Streaming.Round(1e6), r.DeltaPct)
	}
	return nil
}

func runOnline(scale int, duration float64, seed uint64, ratesSpec string) error {
	fmt.Println("Online resilience: achieved FPS and degradation vs injected drop rate (RTP)")
	fmt.Println("paper context: online mode reports frames/second; faults are seeded and replayable")
	rates := core.OnlineFaultRates
	if ratesSpec != "" {
		rates = rates[:0]
		for _, part := range strings.Split(ratesSpec, ",") {
			var r float64
			if _, err := fmt.Sscanf(strings.TrimSpace(part), "%g", &r); err != nil {
				return fmt.Errorf("vrbench: online-faults %q: %w", part, err)
			}
			rates = append(rates, r)
		}
	}
	points, err := core.OnlineResilience(core.CompareConfig{
		Scale: scale, Duration: duration, Seed: seed,
	}, rates, nil)
	if err != nil {
		return err
	}
	fmt.Printf("%-7s %7s %8s %8s %8s %6s %8s %8s %9s\n",
		"Query", "Drop", "Frames", "FPS", "Dropped", "Gaps", "Resyncs", "Retries", "Degraded")
	for _, pt := range points {
		r := pt.Report
		fmt.Printf("%-7s %6.1f%% %8d %8.1f %8d %6d %8d %8d %9v\n",
			pt.Query, pt.FaultRate*100, r.Frames, r.FPS,
			r.FramesDropped, r.Gaps, r.Resyncs, r.Retries, r.Degraded)
	}
	return nil
}

// runShardSweep measures the full Light-DB-like query batch through the
// coordinator/worker plane at worker counts 1, 2, and 4 — the execution
// counterpart of Figure 9's generator node sweep. The shard plane
// guarantees identical results at every count; the sweep shows what the
// topology costs (single core) or buys (multiple cores).
// runTileSweep measures the tiled spatial decode path: the Q1
// (select/crop) batch on the same city encoded untiled and as a 2x2
// tile grid. At 1x1 the bitstream is bit-identical to the pre-tile
// encoder; at 2x2 each instance's declared ROI reconstructs only the
// tiles it touches, so decode work shrinks with spatial selectivity
// while results stay identical within each grid's bitstream.
func runTileSweep(scale int, duration float64, seed uint64, workers, queryWorkers int) error {
	fmt.Println("Tiled spatial decode: Q1 batch by tile grid (1x1 = untiled baseline)")
	points, err := core.TileSweep(core.CompareConfig{
		Scale: scale, Duration: duration, Seed: seed,
		Workers: workers, QueryWorkers: queryWorkers,
	}, [][2]int{{1, 1}, {2, 2}})
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %-14s %12s %8s %12s %10s\n", "Grid", "System", "Elapsed", "Frames", "FramesDec", "HitRate")
	for _, p := range points {
		for _, run := range p.Result.Runs {
			cell, ok := p.Result.Cell(run.System, queries.Q1)
			if !ok {
				continue
			}
			fmt.Printf("%-8s %-14s %12s %8d %12d %9.0f%%\n",
				p.Grid(), run.System, cell.Elapsed.Round(1e6), cell.Frames,
				run.Cache.FramesDecoded, 100*run.Cache.HitRate())
		}
	}
	if len(points) == 2 {
		for _, run := range points[0].Result.Runs {
			base, ok1 := points[0].SystemElapsed(run.System)
			tiled, ok2 := points[1].SystemElapsed(run.System)
			if ok1 && ok2 && tiled > 0 {
				fmt.Printf("%s: 2x2 ROI decode speedup %.2fx\n", run.System, base.Seconds()/tiled.Seconds())
			}
		}
	}
	return nil
}

func runShardSweep(scale int, duration float64, seed uint64, workers int) error {
	fmt.Println("Sharded execution: batch runtime by worker count (in-process pipe workers)")
	fmt.Println("paper shape (Fig. 9 applied to execution): flat on one core, scaling with cores;")
	fmt.Println("results are byte-identical at every worker count")
	points, err := core.ShardSweep(core.CompareConfig{
		Scale: scale, Duration: duration, Seed: seed, Workers: workers,
	}, "lightdblike", []int{1, 2, 4})
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %12s %10s %8s %10s\n", "Workers", "Elapsed", "FPS", "Frames", "Failures")
	for _, p := range points {
		fmt.Printf("%-8d %12s %10.1f %8d %10d\n",
			p.Shards, p.Elapsed.Round(1e6), p.FPS(), p.Frames, p.Counters.WorkerFailures)
	}
	return nil
}

// runShardWorker serves shard coordinator connections until killed —
// the worker half of a multi-process vrbench topology. Jobs carry the
// dataset generation spec, so workers need no shared filesystem.
func runShardWorker(listen string) int {
	srv, err := shard.ListenWorker(listen, shard.WorkerOptions{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "vrbench: shard-worker: %v\n", err)
		return 1
	}
	fmt.Printf("vrbench: shard worker listening on %s\n", srv.Addr())
	if err := srv.Serve(context.Background()); err != nil {
		fmt.Fprintf(os.Stderr, "vrbench: shard-worker: %v\n", err)
		return 1
	}
	return 0
}

// splitAddrs parses a comma-separated address list.
func splitAddrs(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func runFig2(scale int, seed uint64) error {
	fmt.Printf("Figure 2: overhead view of a randomized Visual City (L=%d)\n", scale)
	out, err := core.OverheadMap(scale, seed)
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}
