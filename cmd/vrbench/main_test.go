package main

import (
	"errors"
	"testing"
)

// TestCloseDebugExitPath mirrors cmd/vcd's contract: a debug listener
// that died mid-run turns into the distinct exitDebugClose status even
// when the experiments themselves succeeded.
func TestCloseDebugExitPath(t *testing.T) {
	if got := closeDebug(nil); got != 0 {
		t.Errorf("closeDebug(nil) = %d, want 0", got)
	}
	if got := closeDebug(func() error { return nil }); got != 0 {
		t.Errorf("clean close = %d, want 0", got)
	}
	if got := closeDebug(func() error { return errors.New("listener died") }); got != exitDebugClose {
		t.Errorf("failed close = %d, want %d", got, exitDebugClose)
	}
}
