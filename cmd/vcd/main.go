// Command vcd is the Visual City Driver: it runs the Visual Road
// benchmark against a VDBMS over a generated dataset, measures each
// query batch, validates results, and prints the report.
//
// Usage:
//
//	vcd -data DIR [-system scannerlike|lightdblike|noscopelike]
//	    [-queries Q1,Q2a,...] [-mode write|streaming] [-out DIR]
//	    [-seed S] [-validate] [-instances N]
//	    [-shard-workers N | -shard-addrs HOST:PORT,...]
//	vcd -shard-worker [-shard-listen ADDR] [-data DIR]
//
// Example:
//
//	vcd -data /tmp/vr -system lightdblike -mode streaming -validate
//
// Sharded execution partitions each query batch across worker
// processes (or in-process pipe workers with -shard-workers) and merges
// a report identical to the single-process run:
//
//	vcd -shard-worker -shard-listen 127.0.0.1:7001 -data /tmp/vr &
//	vcd -shard-worker -shard-listen 127.0.0.1:7002 -data /tmp/vr &
//	vcd -data /tmp/vr -shard-addrs 127.0.0.1:7001,127.0.0.1:7002
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/detect"
	"repro/internal/metrics"
	"repro/internal/queries"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/stream"
	"repro/internal/vcd"
	"repro/internal/vdbms"
	"repro/internal/vdbms/lightdblike"
	"repro/internal/vdbms/noscopelike"
	"repro/internal/vdbms/scannerlike"
	"repro/internal/vfs"
)

func main() { os.Exit(run()) }

// exitDebugClose is the exit status when the benchmark itself succeeded
// but the debug server failed mid-run (listener died, serve error) —
// distinct from 1 (run failure) and 2 (usage) so scrapers polling
// /debug endpoints learn their window had a hole.
const exitDebugClose = 3

// closeDebug shuts the debug server down and maps the outcome to an
// exit status contribution: 0 when there was no server or it closed
// cleanly, exitDebugClose when the close surfaced a mid-run failure.
func closeDebug(closeFn func() error) int {
	if closeFn == nil {
		return 0
	}
	if err := closeFn(); err != nil {
		fmt.Fprintf(os.Stderr, "vcd: debug server: %v\n", err)
		return exitDebugClose
	}
	return 0
}

func run() int {
	data := flag.String("data", "", "dataset directory written by vcg (required)")
	system := flag.String("system", "lightdblike", "system under test: scannerlike, lightdblike, noscopelike")
	queryList := flag.String("queries", "", "comma-separated query list (e.g. Q1,Q2a,Q7); default all")
	mode := flag.String("mode", "streaming", "result mode: write or streaming")
	out := flag.String("out", "", "result directory (write mode)")
	seed := flag.Uint64("seed", 1, "parameter sampling seed")
	validate := flag.Bool("validate", false, "validate results against the reference implementation / scene geometry")
	instances := flag.Int("instances", 4, "query instances per unit of scale (the paper uses 4)")
	queryWorkers := flag.Int("query-workers", 0, "concurrent query instances per batch (0 = one per CPU, 1 = serial); results are identical at any count")
	sequential := flag.Bool("sequential", false, "paper-faithful execution: one query instance at a time, no shared decode cache (overrides -query-workers)")
	fullDecode := flag.Bool("full-decode", false, "disable range-aware decode: windowed queries slice whole-clip decodes (the pre-range baseline)")
	online := flag.Bool("online", false, "online mode: deliver inputs as live-paced streams (Q1/Q2a/Q2c/Q5)")
	transport := flag.String("transport", "pipe", "online transport: pipe or rtp")
	onlineFaults := flag.String("online-faults", "", "online fault spec, e.g. 0.01 or drop=0.01,reorder=0.005,cut=12,dial=2")
	onlineSeed := flag.Uint64("online-seed", 1, "seed keying the deterministic fault schedule")
	onlineTimeout := flag.Duration("online-timeout", 0, "per-stream deadline for online sessions (0 = none)")
	shardWorkers := flag.Int("shard-workers", 0, "run the batch through the shard plane with N in-process workers (0/1 = single-process); results are identical at any count")
	shardAddrs := flag.String("shard-addrs", "", "comma-separated addresses of remote shard workers (vcd -shard-worker); overrides -shard-workers")
	shardWorker := flag.Bool("shard-worker", false, "run as a shard worker: serve coordinator connections instead of executing a benchmark")
	shardListen := flag.String("shard-listen", "127.0.0.1:0", "listen address in -shard-worker mode")
	jsonOut := flag.Bool("json", false, "emit the report as JSON (for downstream tooling)")
	metricsJSON := flag.String("metrics-json", "", "write pipeline telemetry (stage histograms, gauges, cache stats) as JSON to this file")
	reportFlag := flag.Bool("report", false, "print the stage-breakdown telemetry table after the run")
	debugAddr := flag.String("debug-addr", "", "serve live telemetry and pprof handlers on this address (e.g. localhost:6060)")
	flag.Parse()

	if *metricsJSON != "" || *reportFlag || *debugAddr != "" {
		metrics.SetEnabled(true)
	}
	var debugClose func() error
	if *debugAddr != "" {
		addr, closeFn, err := metrics.ServeDebug(*debugAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "vcd: serving telemetry on http://%s/debug/metrics\n", addr)
		debugClose = closeFn
	}

	if *shardWorker {
		runShardWorker(*shardListen, *data)
		return closeDebug(debugClose)
	}
	if *data == "" {
		fmt.Fprintln(os.Stderr, "vcd: -data is required")
		flag.Usage()
		os.Exit(2)
	}
	store, err := vfs.NewLocal(*data)
	if err != nil {
		fatal(err)
	}
	ds, err := vcd.LoadDataset(store, detect.ProfileSynthetic)
	if err != nil {
		fatal(err)
	}
	sys, err := systemByName(*system)
	if err != nil {
		fatal(err)
	}
	qs, err := queries.ParseList(*queryList)
	if err != nil {
		fatal(err)
	}
	opt := vcd.Options{
		Queries:           qs,
		InstancesPerScale: *instances,
		Seed:              *seed,
		Validate:          *validate,
		MaxUpsamplePixels: 1 << 24,
		Workers:           *queryWorkers,
		Sequential:        *sequential,
		FullDecode:        *fullDecode,
	}
	switch *mode {
	case "write":
		if *out == "" {
			fatal(fmt.Errorf("vcd: write mode requires -out"))
		}
		rs, err := vfs.NewLocal(*out)
		if err != nil {
			fatal(err)
		}
		opt.Mode = vcd.WriteMode
		opt.ResultStore = rs
	case "streaming":
		opt.Mode = vcd.StreamingMode
	default:
		fatal(fmt.Errorf("vcd: unknown mode %q", *mode))
	}

	fmt.Printf("vcd: benchmarking %s on %s (L=%d, %dx%d, %.0fs)\n",
		sys.Name(), *data, ds.Manifest.Scale, ds.Manifest.Width, ds.Manifest.Height, ds.Manifest.Duration)
	if *online {
		runOnline(ds, opt, onlineConfig{
			transport:   *transport,
			faultSpec:   *onlineFaults,
			seed:        *onlineSeed,
			timeout:     *onlineTimeout,
			metricsJSON: *metricsJSON,
		})
		return closeDebug(debugClose)
	}
	var report *vcd.RunReport
	if *shardWorkers > 1 || *shardAddrs != "" {
		copt := shard.Options{Shards: *shardWorkers}
		if *shardAddrs != "" {
			addrs := splitAddrs(*shardAddrs)
			copt.Shards = len(addrs)
			copt.Transport = &shard.AddrTransport{Addrs: addrs}
		}
		var counters *shard.Counters
		report, counters, err = shard.Run(context.Background(), shard.Plan{
			Dataset: shard.DatasetSpec{Path: *data},
			Store:   store,
			System:  shard.SystemSpec{Name: *system},
			Scale:   ds.Manifest.Scale,
			Opt:     opt,
		}, copt)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "vcd: shard plane: %d workers, %d failures, %d instances retried\n",
			counters.Workers, counters.WorkerFailures, counters.RetriedInstances)
		if t := report.Trace; t != nil && t.SlowestShard >= 0 {
			fmt.Fprintf(os.Stderr, "vcd: stragglers: slowest shard %d (%.2fx mean), p99 instance %.1fms, critical path %.1fms\n",
				t.SlowestShard, t.StragglerRatio, t.P99InstanceMS, t.CriticalPathMS)
		}
	} else {
		report, err = vcd.Run(ds, sys, opt)
		if err != nil {
			fatal(err)
		}
	}
	if *metricsJSON != "" {
		if err := writeTelemetryArtifact(*metricsJSON, report); err != nil {
			fatal(err)
		}
	}
	if *reportFlag && report.Telemetry != nil {
		// The table goes to stderr under -json so the JSON stream stays
		// machine-parseable.
		w := os.Stdout
		if *jsonOut {
			w = os.Stderr
		}
		fmt.Fprintln(w, "\n---- pipeline telemetry ----")
		report.Telemetry.WriteTable(w)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(vcd.Summarize(report)); err != nil {
			fatal(err)
		}
		return closeDebug(debugClose)
	}
	printReport(report, *validate)
	return closeDebug(debugClose)
}

// telemetryArtifact is the -metrics-json schema: the run's telemetry
// plus each query batch's interval record, the distributed-trace
// summary (per-instance timelines, straggler attribution), and the
// event journal covering the run.
type telemetryArtifact struct {
	System       string                        `json:"system"`
	Scale        int                           `json:"scale"`
	DecodedCache metrics.CacheTelemetry        `json:"decoded_cache"`
	Run          *metrics.Telemetry            `json:"run"`
	Queries      map[string]*metrics.Telemetry `json:"queries"`
	Trace        *metrics.TraceReport          `json:"trace,omitempty"`
	Events       []metrics.Event               `json:"events,omitempty"`
}

// writeTelemetryArtifact serializes the run's telemetry atomically
// (temp file + rename, so a crash never leaves a truncated artifact).
func writeTelemetryArtifact(path string, r *vcd.RunReport) error {
	art := telemetryArtifact{
		System:       r.System,
		Scale:        r.Scale,
		DecodedCache: r.DecodedCache.Report(),
		Run:          r.Telemetry,
		Queries:      map[string]*metrics.Telemetry{},
		Trace:        r.Trace,
		Events:       r.Events,
	}
	for i := range r.Queries {
		if qr := &r.Queries[i]; qr.Telemetry != nil {
			art.Queries[string(qr.Query)] = qr.Telemetry
		}
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// onlineConfig carries the online-mode CLI knobs.
type onlineConfig struct {
	transport   string
	faultSpec   string
	seed        uint64
	timeout     time.Duration
	metricsJSON string
}

// onlineArtifact is the -metrics-json schema for online mode: per-query
// degradation reports plus the run's telemetry (including the online
// counter block).
type onlineArtifact struct {
	Transport string                       `json:"transport"`
	FaultSpec string                       `json:"fault_spec,omitempty"`
	Seed      uint64                       `json:"seed"`
	Queries   map[string]*vcd.OnlineReport `json:"queries"`
	Telemetry *metrics.Telemetry           `json:"telemetry,omitempty"`
}

// runOnline executes the online-capable queries against live-paced
// streams — optionally degraded by a seeded fault plan — and reports
// achieved frames per second plus degradation accounting, as the paper
// requires for online-mode results.
func runOnline(ds *vcd.Dataset, opt vcd.Options, cfg onlineConfig) {
	var transport vcd.OnlineTransport
	switch cfg.transport {
	case "pipe":
		transport = vcd.TransportPipe
	case "rtp":
		transport = vcd.TransportRTP
	default:
		fatal(fmt.Errorf("vcd: unknown transport %q", cfg.transport))
	}
	plan, err := stream.ParseFaultSpec(cfg.faultSpec, cfg.seed, "")
	if err != nil {
		fatal(err)
	}
	qs := opt.Queries
	if len(qs) == 0 {
		qs = []queries.QueryID{queries.Q1, queries.Q2a, queries.Q2c, queries.Q5}
	}
	var base metrics.Snapshot
	if metrics.Enabled() {
		base = metrics.Capture()
	}
	art := onlineArtifact{Transport: cfg.transport, FaultSpec: cfg.faultSpec, Seed: cfg.seed,
		Queries: map[string]*vcd.OnlineReport{}}
	fmt.Printf("\n%-7s %10s %10s %10s %8s %6s %8s %9s\n",
		"Query", "Frames", "Elapsed", "FPS", "Dropped", "Gaps", "Resyncs", "Degraded")
	for _, q := range qs {
		insts, err := vcd.BuildBatch(ds, q, 1, opt)
		if err != nil {
			fatal(err)
		}
		inst := insts[0]
		rep, err := vcd.RunOnlineOpts(context.Background(), inst, vcd.OnlineOptions{
			Transport: transport,
			Faults:    plan.ForCamera(inst.Inputs[0].Env.Camera.ID),
			Timeout:   cfg.timeout,
			Retry:     stream.RetryPolicy{Seed: cfg.seed},
		})
		if errors.Is(err, vcd.ErrOnlineUnsupported) {
			fmt.Printf("%-7s %10s\n", q, "unsupported")
			continue
		}
		if err != nil {
			fatal(err)
		}
		art.Queries[string(q)] = rep
		fmt.Printf("%-7s %10d %10s %10.1f %8d %6d %8d %9v\n",
			q, rep.Frames, rep.Elapsed.Round(1e6), rep.FPS,
			rep.FramesDropped, rep.Gaps, rep.Resyncs, rep.Degraded)
	}
	if cfg.metricsJSON != "" {
		t := metrics.Capture().Sub(base)
		art.Telemetry = &t
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			fatal(err)
		}
		tmp := cfg.metricsJSON + ".tmp"
		if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		if err := os.Rename(tmp, cfg.metricsJSON); err != nil {
			os.Remove(tmp)
			fatal(err)
		}
	}
}

// runShardWorker serves coordinator connections until SIGINT/SIGTERM:
// the worker half of multi-process sharded execution. The first signal
// drains gracefully — the listener closes, the in-flight conversation
// finishes — and a second signal kills the process outright.
func runShardWorker(listen, data string) {
	ctx, stop := serve.SignalContext(context.Background())
	defer stop()
	if err := shardWorkerServe(ctx, listen, data); err != nil {
		fatal(err)
	}
}

// shardWorkerServe runs one worker server until ctx ends. With -data
// the worker reads the dataset from the shared directory; otherwise
// the job's dataset spec tells it where to look (or how to
// regenerate). A ctx cancellation (the signal path) is a clean exit.
func shardWorkerServe(ctx context.Context, listen, data string) error {
	wopt := shard.WorkerOptions{}
	if data != "" {
		store, err := vfs.NewLocal(data)
		if err != nil {
			return err
		}
		wopt.Store = store
	}
	srv, err := shard.ListenWorker(listen, wopt)
	if err != nil {
		return err
	}
	srv.Logf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	fmt.Printf("vcd: shard worker listening on %s\n", srv.Addr())
	err = srv.Serve(ctx)
	if errors.Is(err, context.Canceled) {
		fmt.Println("vcd: shard worker stopped: signal received")
		return nil
	}
	return err
}

// splitAddrs parses the -shard-addrs list.
func splitAddrs(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func systemByName(name string) (vdbms.System, error) {
	switch name {
	case "scannerlike":
		return scannerlike.New(scannerlike.Options{}), nil
	case "lightdblike":
		return lightdblike.New(lightdblike.Options{}), nil
	case "noscopelike":
		return noscopelike.NewDefault(), nil
	}
	return nil, fmt.Errorf("vcd: unknown system %q", name)
}

func printReport(r *vcd.RunReport, validated bool) {
	fmt.Printf("\n%-7s %10s %10s %8s %10s", "Query", "Batch", "Elapsed", "Frames", "FPS")
	if validated {
		fmt.Printf(" %8s %10s %10s", "Valid", "PSNR(avg)", "Semantic")
	}
	fmt.Println()
	for _, qr := range r.Queries {
		if qr.Unsupported {
			fmt.Printf("%-7s %10s\n", qr.Query, "unsupported")
			continue
		}
		fmt.Printf("%-7s %6d/%-3d %10s %8d %10.1f",
			qr.Query, qr.Completed, qr.BatchSize, qr.Elapsed.Round(1e6), qr.Frames, qr.FPS())
		if validated {
			sem := "-"
			if qr.Validation.SemanticChecked > 0 {
				sem = fmt.Sprintf("%.0f%%", qr.Validation.SemanticPassRate()*100)
			}
			fmt.Printf(" %7.0f%% %10.1f %10s",
				qr.Validation.PassRate()*100, qr.Validation.PSNR.Mean, sem)
		}
		if qr.ResourceErrors > 0 {
			fmt.Printf("  [%d resource failure(s)]", qr.ResourceErrors)
		}
		if qr.BatchSplits > 0 {
			fmt.Printf("  [split into %d sub-batches]", qr.BatchSplits+1)
		}
		fmt.Println()
	}
	fmt.Printf("\ntotal: %s\n", r.Elapsed.Round(1e6))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "vcd: %v\n", err)
	os.Exit(1)
}
