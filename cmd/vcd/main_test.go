package main

import (
	"context"
	"errors"
	"os"
	"syscall"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/serve"
)

// TestCloseDebugExitPath pins the exit-status contract for the debug
// server: no server and a clean shutdown exit 0, a listener that died
// mid-run exits with the distinct exitDebugClose status instead of
// being printed and discarded. (The closer's own failure detection is
// covered in internal/metrics; this pins the mapping to exit codes.)
func TestCloseDebugExitPath(t *testing.T) {
	if got := closeDebug(nil); got != 0 {
		t.Errorf("closeDebug(nil) = %d, want 0", got)
	}
	if got := closeDebug(func() error { return nil }); got != 0 {
		t.Errorf("clean close = %d, want 0", got)
	}
	if got := closeDebug(func() error { return errors.New("listener died") }); got != exitDebugClose {
		t.Errorf("failed close = %d, want %d", got, exitDebugClose)
	}
	// The real closer from a healthy server maps to a clean exit.
	_, closeFn, err := metrics.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if got := closeDebug(closeFn); got != 0 {
		t.Errorf("healthy server close = %d, want 0", got)
	}
}

// TestShardWorkerSignalShutdown pins satellite contract of the worker
// CLI: a -shard-worker process drains cleanly on SIGTERM instead of
// ignoring it. The signal context is registered before the kill, so
// the signal lands on the handler rather than the default action
// (which would kill this test binary).
func TestShardWorkerSignalShutdown(t *testing.T) {
	ctx, stop := serve.SignalContext(context.Background())
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- shardWorkerServe(ctx, "127.0.0.1:0", "") }()
	// Let the worker reach its accept loop before signalling.
	time.Sleep(100 * time.Millisecond)

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shardWorkerServe after SIGTERM = %v, want nil (clean drain)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not shut down on SIGTERM")
	}
}
