package main

import (
	"errors"
	"testing"

	"repro/internal/metrics"
)

// TestCloseDebugExitPath pins the exit-status contract for the debug
// server: no server and a clean shutdown exit 0, a listener that died
// mid-run exits with the distinct exitDebugClose status instead of
// being printed and discarded. (The closer's own failure detection is
// covered in internal/metrics; this pins the mapping to exit codes.)
func TestCloseDebugExitPath(t *testing.T) {
	if got := closeDebug(nil); got != 0 {
		t.Errorf("closeDebug(nil) = %d, want 0", got)
	}
	if got := closeDebug(func() error { return nil }); got != 0 {
		t.Errorf("clean close = %d, want 0", got)
	}
	if got := closeDebug(func() error { return errors.New("listener died") }); got != exitDebugClose {
		t.Errorf("failed close = %d, want %d", got, exitDebugClose)
	}
	// The real closer from a healthy server maps to a clean exit.
	_, closeFn, err := metrics.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if got := closeDebug(closeFn); got != 0 {
		t.Errorf("healthy server close = %d, want 0", got)
	}
}
