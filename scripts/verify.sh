#!/bin/sh
# Verify recipe: vet, build, full test suite, then the race detector on
# the packages with real concurrency (worker pool, parallel generation,
# row-parallel encoder, concurrent query batches + shared decode cache,
# frame-parallel operators).
set -eux

go vet ./...
go build ./...
go test ./...
go test -race ./internal/parallel ./internal/vcg ./internal/codec ./internal/vcd ./internal/queries
