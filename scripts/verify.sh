#!/bin/sh
# Verify recipe: vet, build, full test suite, then the race detector on
# the packages with real concurrency (worker pool, parallel generation,
# row-parallel encoder, concurrent query batches, frame-parallel
# operators, and the interval-keyed range decode cache — single-flight
# fills, window coalescing, and pinned-window eviction are all
# exercised under -race via ./internal/vcd).
set -eux

go vet ./...
go build ./...
go test ./...
go test -race ./internal/parallel ./internal/vcg ./internal/codec ./internal/vcd ./internal/queries ./internal/metrics ./internal/stream
go test -race -run 'TestDecodedCache|TestRunRangeDecodeEquivalence' ./internal/vcd
# Online-mode resilience under the race detector: every RunOnline exit
# path (success, cancel, timeout, decode error, connection cut) must
# leave the goroutine count where it started, and seeded fault schedules
# must reproduce exactly.
go test -race -run 'TestRunOnline|TestPipeWriteCloseWriteRace|TestServeRTPFault' ./internal/vcd ./internal/stream
# Observability invariants under the race detector: lock-free histogram
# merges stay lossless, span aggregation stays atomic, and telemetry
# counts match between sequential and 8-way runs.
go test -race -run 'TestHistogramMergeConcurrent|TestSpanConcurrentAggregation' ./internal/metrics
go test -race -run 'TestTelemetryModeInvariance' ./internal/vcd
# Codec hot-path exactness and robustness: the golden corpus pins
# byte-identity of the word-at-a-time entropy I/O and butterfly
# transform against the reference formulation across every decode path;
# the fuzz seed corpora run as ordinary tests (go test executes every
# f.Add seed); the allocation pins guard the pooled steady state; and
# the sub-GOP entropy/reconstruction split plus parallel span extraction
# run under the race detector.
go test -race -run 'TestGoldenBitstreams|^Fuzz|StateAllocs$|TestExtractSpanParallel' ./internal/codec ./internal/container
# Tiled spatial decode under the race detector: tile-parallel
# reconstruction must stitch byte-identically to the full-frame decode
# at every worker count and grid, the driver-level equivalence test
# exercises the tile-keyed decoded cache (mask-scoped windows,
# full-frame supersets serving tile requests), and FuzzTileIndex's seed
# corpus pins that corrupt per-tile offset tables error cleanly.
go test -race -run 'TestTileStitchIdentity|TestTiledEncodeDeterministicAcrossWorkers|TestRunTileDecodeEquivalence|TestDatasetDecodedTiles|FuzzTileIndex' ./internal/codec ./internal/container ./internal/vcd
# Sharded execution plane under the race detector: coordinator reader
# goroutines, heartbeaters, and in-process pipe workers all interleave;
# the equivalence test then asserts the deterministic-merge contract —
# sharded output byte-identical to the single-process run at shards
# {1,2,4} and under a deterministically killed worker.
go test -race ./internal/shard
go test -race -run 'TestShardEquivalence|TestShardWorkerDeathRecovers' ./internal/shard
# Worker-server lifecycle under the race detector: serve/close cycles
# must leak no ctx-watcher goroutines, a half-open coordinator must be
# dropped by the first-frame deadline without wedging the accept loop,
# and a SIGTERM'd -shard-worker must drain cleanly.
go test -race -run 'TestWorkerServer' ./internal/shard
go test -race -run 'TestShardWorkerSignalShutdown' ./cmd/vcd
# Benchmark-as-a-service control plane under the race detector: the
# executor, per-tenant admission, cancellation plumbing, and restart
# recovery interleave with HTTP handlers; the end-to-end test asserts
# the daemon's persisted report is byte-identical (canonical form) to a
# direct shard run of the same plan against the same worker pool.
go test -race ./internal/serve
