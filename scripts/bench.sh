#!/bin/sh
# Bench recipe: run the query-execution benchmarks (batch serial vs
# parallel with the shared decode cache, GOP-parallel decode) into
# BENCH_query.json, and the range-aware decode benchmarks (short-window
# batch vs full-clip decode: frames-decoded ratio and wall-clock
# speedup) into BENCH_range.json, so the perf trajectory is tracked
# from PR to PR. JSON shape: name -> ns/op, B/op, extra metrics.
set -eu
cd "$(dirname "$0")/.."

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# emit_json converts `go test -bench` output on stdin to a JSON object.
emit_json() {
    awk '
    BEGIN { n = 0; print "{" }
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        m = ""
        for (i = 3; i + 1 <= NF; i += 2) {
            if (m != "") m = m ", "
            m = m "\"" $(i + 1) "\": " $i
        }
        if (n++) printf ",\n"
        printf "  \"%s\": {%s}", name, m
    }
    END { print "\n}" }
    '
}

# emit_json_min reduces `go test -bench -count N` output to a JSON
# object keeping, per benchmark name, the run with the lowest ns/op
# (min-of-N damps scheduler noise on short hot-path rows).
emit_json_min() {
    awk '
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        ns = $3 + 0
        if (!(name in best) || ns < best[name]) {
            best[name] = ns
            m = ""
            for (i = 3; i + 1 <= NF; i += 2) {
                if (m != "") m = m ", "
                m = m "\"" $(i + 1) "\": " $i
            }
            row[name] = m
        }
        if (!(name in seen)) { order[n++] = name; seen[name] = 1 }
    }
    END {
        print "{"
        for (i = 0; i < n; i++)
            printf "  \"%s\": {%s}%s\n", order[i], row[order[i]], (i + 1 < n ? "," : "")
        print "}"
    }
    '
}

# min-of-5 per row: single-run sampling once produced an apparent 24%
# serial-vs-parallel inversion on the full mix that was pure cross-row
# scheduler noise (the span breakdown in the BenchmarkRunBatch comment
# has the real shape — parallel wins by the decode share, ~7%).
go test -run '^$' -bench '^BenchmarkRunBatch$' -benchtime 3x -benchmem -count 5 . >"$tmp"
go test -run '^$' -bench '^BenchmarkDecodeParallel$' -benchmem -count 5 ./internal/codec >>"$tmp"
emit_json_min <"$tmp" >BENCH_query.json

go test -run '^$' -bench '^BenchmarkDecodeRange$' -benchtime 3x ./internal/codec >"$tmp"
emit_json <"$tmp" >BENCH_range.json

# BENCH_online.json: online-mode throughput over RTP on a fake clock at
# the fault ladder (0%, 1%, 5% packet drop) — achieved fps plus frames
# lost to the seeded fault schedule.
go test -run '^$' -bench '^BenchmarkOnlineFaults$' -benchtime 3x . >"$tmp"
emit_json <"$tmp" >BENCH_online.json

# BENCH_obs.json: observability overhead. The same hot benchmarks run
# with the metrics registry disabled (the default no-op path) and
# enabled (VR_OBS=1, see obsEnabled in the bench files); min-of-5 ns/op
# per configuration damps scheduler noise, and the "total" row sums the
# per-configuration minima — the headline number the <2% budget from
# DESIGN.md §5.7 applies to (individual short rows still jitter more
# than the instrumentation itself costs).
tmp_on="$(mktemp)"
trap 'rm -f "$tmp" "$tmp_on"' EXIT
run_obs_benches() {
    VR_OBS="$1" go test -run '^$' -bench '^BenchmarkDecodeRange$' -benchtime 100x -count 5 ./internal/codec
    VR_OBS="$1" go test -run '^$' -bench '^BenchmarkRunBatch$' -benchtime 3x -count 5 .
    # The trace/event layer in isolation: a trace-tagged span plus one
    # journal record per op. The off row is the single gating atomic
    # load; the on row is the full ring-publication cost.
    VR_OBS="$1" go test -run '^$' -bench '^BenchmarkTraceEventPath$' -benchtime 100000x -count 5 ./internal/metrics
}
run_obs_benches "" >"$tmp"
run_obs_benches 1 >"$tmp_on"
awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = $3 + 0
    if (FILENAME == ARGV[1]) {
        if (!(name in off)) { order[n++] = name; off[name] = ns }
        else if (ns < off[name]) off[name] = ns
    } else if (!(name in on) || ns < on[name]) on[name] = ns
}
END {
    print "{"
    toff = ton = 0
    for (i = 0; i < n; i++) {
        name = order[i]
        if (!(name in on)) continue
        toff += off[name]; ton += on[name]
        printf "  \"%s\": {\"off_ns\": %d, \"on_ns\": %d, \"overhead_pct\": %.2f},\n",
            name, off[name], on[name], (on[name] - off[name]) / off[name] * 100
    }
    tpct = 0
    if (toff > 0) tpct = (ton - toff) / toff * 100
    printf "  \"total\": {\"off_ns\": %.0f, \"on_ns\": %.0f, \"overhead_pct\": %.2f}\n", toff, ton, tpct
    print "}"
}
' "$tmp" "$tmp_on" >BENCH_obs.json

# BENCH_codec.json: the codec hot path — encode, serial decode, and the
# worker-count slope of parallel decode (chain-parallel when GOPs cover
# the workers, sub-GOP entropy/reconstruction otherwise). min-of-5 per
# row; MB/s counts compressed bytes through the entropy+transform path.
go test -run '^$' -bench '^(BenchmarkEncode|BenchmarkDecode|BenchmarkDecodeParallel)$' -benchmem -count 5 ./internal/codec >"$tmp"
emit_json_min <"$tmp" >BENCH_codec.json

# BENCH_tile.json: the spatial-selectivity win of tile mode — a
# single-tile ROI decode of a 2x2-tiled stream vs the full-frame decode
# of the same stream, both serial so the ratio is pure work reduction
# (entropy decode + reconstruction confined to the requested tile).
# min-of-5 per row; the roi1of4 ns/op should sit well under half the
# full row's.
go test -run '^$' -bench '^BenchmarkDecodeTiles$' -benchmem -count 5 ./internal/codec >"$tmp"
emit_json_min <"$tmp" >BENCH_tile.json

# BENCH_shard.json: batch throughput through the coordinator/worker
# scatter-gather plane at shards {1,2,4} over the in-process pipe
# transport — full wire protocol, no sockets. min-of-5 damps scheduler
# noise. On a single core the ladder rises mildly with shard count
# (~3ms per extra worker: each loads its own dataset and fills its own
# decoded cache, plus framing); it scales with cores when they exist.
go test -run '^$' -bench '^BenchmarkShardedBatch$' -benchtime 1x -count 5 ./internal/shard >"$tmp"
emit_json_min <"$tmp" >BENCH_shard.json

# BENCH_serve.json: the vrserved control plane's per-job overhead — one
# submit→done round trip (admission, journaling to disk, dispatch,
# terminal transition, report persistence) with the execution plane
# stubbed, so the number is pure daemon cost, not benchmark runtime.
go test -run '^$' -bench '^BenchmarkServeSubmit$' -benchtime 50x -count 5 ./internal/serve >"$tmp"
emit_json_min <"$tmp" >BENCH_serve.json

cat BENCH_query.json BENCH_range.json BENCH_online.json BENCH_obs.json BENCH_codec.json BENCH_tile.json BENCH_shard.json BENCH_serve.json
