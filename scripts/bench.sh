#!/bin/sh
# Bench recipe: run the query-execution benchmarks (batch serial vs
# parallel with the shared decode cache, GOP-parallel decode) into
# BENCH_query.json, and the range-aware decode benchmarks (short-window
# batch vs full-clip decode: frames-decoded ratio and wall-clock
# speedup) into BENCH_range.json, so the perf trajectory is tracked
# from PR to PR. JSON shape: name -> ns/op, B/op, extra metrics.
set -eu
cd "$(dirname "$0")/.."

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# emit_json converts `go test -bench` output on stdin to a JSON object.
emit_json() {
    awk '
    BEGIN { n = 0; print "{" }
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        m = ""
        for (i = 3; i + 1 <= NF; i += 2) {
            if (m != "") m = m ", "
            m = m "\"" $(i + 1) "\": " $i
        }
        if (n++) printf ",\n"
        printf "  \"%s\": {%s}", name, m
    }
    END { print "\n}" }
    '
}

go test -run '^$' -bench '^BenchmarkRunBatch$' -benchtime 3x -benchmem . >"$tmp"
go test -run '^$' -bench '^BenchmarkDecodeParallel$' -benchmem ./internal/codec >>"$tmp"
emit_json <"$tmp" >BENCH_query.json

go test -run '^$' -bench '^BenchmarkDecodeRange$' -benchtime 3x ./internal/codec >"$tmp"
emit_json <"$tmp" >BENCH_range.json

cat BENCH_query.json BENCH_range.json
