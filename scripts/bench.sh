#!/bin/sh
# Bench recipe: run the query-execution tentpole benchmarks (batch
# serial vs parallel with the shared decode cache, GOP-parallel decode)
# and record them in BENCH_query.json (name -> ns/op, B/op, extra
# metrics) so the perf trajectory is tracked from PR to PR.
set -eu
cd "$(dirname "$0")/.."

out=BENCH_query.json
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench '^BenchmarkRunBatch$' -benchtime 3x -benchmem . >"$tmp"
go test -run '^$' -bench '^BenchmarkDecodeParallel$' -benchmem ./internal/codec >>"$tmp"

awk '
BEGIN { n = 0; print "{" }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    m = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        if (m != "") m = m ", "
        m = m "\"" $(i + 1) "\": " $i
    }
    if (n++) printf ",\n"
    printf "  \"%s\": {%s}", name, m
}
END { print "\n}" }
' "$tmp" >"$out"

cat "$out"
